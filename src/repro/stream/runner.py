"""The streaming driver: ingest, window, checkpoint, resume.

A :class:`StreamRunner` advances a :class:`~repro.stream.source.
StreamSource` through virtual time on one rank (every rank runs its
own, in collective lockstep, exactly like any other job here):

1. **Ingest.**  Each micro-batch arrival advances the virtual clock,
   updates the event-time watermark (``max event time - lateness``)
   and counts records that arrived behind it as *late*.
2. **Close.**  Windows whose end the watermark has passed are
   finalized in order through the scenario's ``window_result``; the
   per-batch stages it builds (via :meth:`dataset`) carry
   lineage keys salted only by stream name + batch index, so every
   batch already seen is served from the
   :class:`~repro.sched.cache.StageCache` and only the newest batch's
   stages execute - the incremental-recompute contract.
3. **Repair.**  A late record re-opens the closed windows that contain
   it: they are re-finalized (fresh window salt, new revision) so the
   final output still matches a full-batch recompute of the same
   total input, bit for bit.
4. **Checkpoint.**  Every finalized window's payload goes through the
   :class:`~repro.ft.checkpoint.CheckpointManager`; a killed stream
   resumes by loading completed windows instead of recomputing them.

Watermark, lag, and window counts are emitted through the closed
``stream.*`` metric namespace (see ``docs/metrics-reference.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster import RankEnv
from repro.sched.executor import PlanRunner
from repro.sched.plan import Dataset, Plan
from repro.stream.source import MicroBatch, StreamSource

_NEG_INF = float("-inf")


@dataclass
class StreamResult:
    """One rank's outcome of a streaming run."""

    #: ``scenario.merge`` over every finalized window (``None`` when
    #: the run was truncated by ``stop_after_windows``).
    final: Any
    #: Per-window payloads, keyed by window id.
    windows: dict[int, Any]
    #: ``(wid, window_end, close_clock)`` per first-time close, in
    #: close order - the live view a demo prints.
    timeline: list[tuple[int, float, float]] = field(default_factory=list)
    closed: int = 0
    resumed: int = 0
    recomputed: int = 0
    late_records: int = 0
    truncated: bool = False


class StreamRunner:
    """Drives one rank's share of a streaming scenario.

    ``scenario`` is duck-typed:

    - ``name``/``config`` identify it and configure the Mimir driver;
    - ``batch_stage(plan, stream, index) -> Dataset`` builds the
      cached per-batch stage chain (called at most once per batch,
      through :meth:`dataset`);
    - ``window_result(runner, window, batches) -> payload`` finalizes
      one window from the batches holding its records (the plan is
      salted per window+revision around the call, so window-scoped
      stages get fresh keys while batch stages keep theirs);
    - ``merge(results) -> final`` folds the per-window payloads into
      the rank's final answer (pure, no collectives).
    """

    def __init__(self, env: RankEnv, scenario, stream: StreamSource,
                 windows, *, lateness: float = 0.0,
                 cache=None, trace=None, checkpoint=None, ctx=None,
                 probe: Callable[[str], None] | None = None,
                 pace: bool = True):
        self.env = env
        self.scenario = scenario
        self.stream = stream
        self.windows = windows
        self.lateness = lateness
        self.checkpoint = checkpoint
        self.probe = probe
        self.pace = pace
        self.plan = Plan(f"stream-{scenario.name}", scenario.config)
        if ctx is not None:
            self.runner: PlanRunner = ctx.runner(self.plan)
        else:
            self.runner = PlanRunner(env, self.plan, cache=cache,
                                     trace=trace)
        self._datasets: dict[int, Dataset] = {}

    # ------------------------------------------------------------ batches

    def dataset(self, index: int) -> Dataset:
        """The cached per-batch dataset, built on first use.

        Built with the plan salt *cleared*: batch stages must derive
        their identity from the ``source_stream`` lineage alone, never
        from whichever window happened to touch the batch first.
        """
        ds = self._datasets.get(index)
        if ds is None:
            base = self.plan.salt
            self.plan.salt = ""
            try:
                ds = self.scenario.batch_stage(self.plan, self.stream,
                                               index)
            finally:
                self.plan.salt = base
            self._datasets[index] = ds
        return ds

    # ---------------------------------------------------------------- run

    def run(self, *, stop_after_windows: int | None = None) -> StreamResult:
        """Advance the stream to completion (or a simulated kill).

        ``stop_after_windows`` truncates the run after that many
        windows have been finalized - the "kill" half of a
        kill/resume test; a fresh runner over the same stream and
        checkpoint manager then resumes from the completed windows.
        """
        env = self.env
        comm = env.comm
        result = StreamResult(final=None, windows={})
        ingested: list[MicroBatch] = []
        max_time = _NEG_INF
        watermark = _NEG_INF

        for batch in self.stream.schedule():
            if stop_after_windows is not None \
                    and result.closed >= stop_after_windows:
                result.truncated = True
                break
            if self.pace:
                wait = batch.arrival - comm.clock.time
                if wait > 0:
                    comm.advance(wait)
            if self.probe is not None:
                self.probe(f"batch{batch.index}")

            dirty: set[int] = set()
            late = 0
            for record in batch.records:
                if record.time < watermark:
                    late += 1
                    for wid in result.windows:
                        if self.windows.window(wid).contains(record.time):
                            dirty.add(wid)
            if late:
                env.metrics.inc("stream.records.late", late)
                result.late_records += late
            ingested.append(batch)
            max_time = max(max_time, batch.max_time)
            if max_time > _NEG_INF:
                watermark = max_time - self.lateness
                env.metrics.set_gauge("stream.watermark", watermark)

            self._close_due(result, ingested, max_time, watermark)
            for wid in sorted(dirty):
                self._finalize(result, ingested, wid, repair=True)

        else:
            # End of stream: everything seen is final - flush the
            # remaining windows regardless of lateness allowance.
            self._close_due(result, ingested, max_time, float("inf"))
            result.final = self.scenario.merge(result.windows)
        return result

    # ------------------------------------------------------------ closing

    def _close_due(self, result: StreamResult, ingested: list[MicroBatch],
                   max_time: float, watermark: float) -> None:
        if max_time == _NEG_INF:
            return
        for wid in range(self.windows.last_wid(max_time) + 1):
            if wid in result.windows:
                continue
            if self.windows.window(wid).end <= watermark:
                self._finalize(result, ingested, wid)

    def _finalize(self, result: StreamResult, ingested: list[MicroBatch],
                  wid: int, *, repair: bool = False) -> None:
        env = self.env
        window = self.windows.window(wid)
        phase = f"win{wid}"
        if not repair and self.checkpoint is not None \
                and self.checkpoint.has(phase):
            result.windows[wid] = self.checkpoint.load_state(phase)
            result.closed += 1
            result.resumed += 1
            env.metrics.inc("stream.windows.resumed")
            return
        batches = [b for b in ingested
                   if any(window.contains(r.time) for r in b.records)]
        base = self.plan.salt
        rev = result.recomputed if repair else 0
        self.plan.salt = f"w{wid}r{rev}" if repair else f"w{wid}"
        try:
            payload = self.scenario.window_result(self, window, batches)
        finally:
            self.plan.salt = base
        result.windows[wid] = payload
        if repair:
            result.recomputed += 1
            env.metrics.inc("stream.windows.recomputed")
        else:
            result.closed += 1
            result.timeline.append((wid, window.end, env.comm.clock.time))
            env.metrics.inc("stream.windows.closed")
            env.metrics.observe("stream.window.lag",
                                max(0.0, env.comm.clock.time - window.end))
        if self.checkpoint is not None:
            self.checkpoint.save_state(phase, payload)

    # ------------------------------------------------------------ queries

    def materialize(self, index: int):
        """The per-batch container (cache-backed); scenario helper."""
        return self.runner.materialize(self.dataset(index))

    @property
    def stage_counts(self) -> dict[str, int]:
        return self.runner.stage_counts

    def stages_executed(self) -> int:
        """Total stage executions (cache hits and restores excluded)."""
        return sum(self.runner.stage_counts.values())
