"""Streaming & incremental MapReduce over the Plan DAG.

Micro-batch ingestion (:class:`StreamSource` + ``Plan.source_stream``),
event-time windows closed by a watermark (:mod:`repro.stream.windows`),
and a :class:`StreamRunner` that recomputes only the newest batch's
stages - everything already seen is served from the
:class:`~repro.sched.cache.StageCache`, and finalized windows are
checkpointed so a killed stream resumes where it stopped.
"""

from repro.stream.runner import StreamResult, StreamRunner
from repro.stream.source import MicroBatch, StreamRecord, StreamSource
from repro.stream.windows import (
    GrowingWindows,
    SlidingWindows,
    TumblingWindows,
    Window,
)

__all__ = [
    "GrowingWindows",
    "MicroBatch",
    "SlidingWindows",
    "StreamRecord",
    "StreamResult",
    "StreamRunner",
    "StreamSource",
    "TumblingWindows",
    "Window",
]
