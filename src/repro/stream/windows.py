"""Event-time windows and the watermark that closes them.

A *windower* names a contiguous family of windows ``0, 1, 2, ...`` over
the event-time axis.  Three shapes cover the demo scenarios:

- :class:`TumblingWindows` - disjoint ``[w*size, (w+1)*size)`` panes
  (live wordcount);
- :class:`SlidingWindows` - overlapping ``[w*step, w*step + size)``
  panes, each record landing in ``size/step`` of them;
- :class:`GrowingWindows` - landmark windows ``[0, (w+1)*step)``: every
  close sees the whole prefix of the stream (incremental PageRank,
  where each "window" is the graph after one more edge delta).

Windows close on the **watermark**: ``max event time seen - allowed
lateness``.  A window whose end the watermark has passed is finalized;
a record arriving behind the watermark is *late*, and any already
closed window containing it must be re-finalized (the runner's job).
All window ends are monotone in the window id, so the runner closes
windows strictly in order.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Window:
    """One pane: ``[start, end)`` in event-time seconds."""

    wid: int
    start: float
    end: float

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end


class TumblingWindows:
    """Disjoint fixed-size panes partitioning the event-time axis."""

    kind = "tumbling"

    def __init__(self, size: float):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size

    def window(self, wid: int) -> Window:
        return Window(wid, wid * self.size, (wid + 1) * self.size)

    def last_wid(self, time: float) -> int:
        """Highest window id containing an event at ``time``."""
        return int(time // self.size)

    def __repr__(self) -> str:
        return f"TumblingWindows(size={self.size})"


class SlidingWindows:
    """Overlapping panes: window ``w`` spans ``[w*step, w*step+size)``."""

    kind = "sliding"

    def __init__(self, size: float, step: float):
        if size <= 0 or step <= 0:
            raise ValueError("window size and step must be positive")
        if step > size:
            raise ValueError("step larger than size leaves gaps; use "
                             "tumbling windows instead")
        self.size = size
        self.step = step

    def window(self, wid: int) -> Window:
        return Window(wid, wid * self.step, wid * self.step + self.size)

    def last_wid(self, time: float) -> int:
        return int(time // self.step)

    def __repr__(self) -> str:
        return f"SlidingWindows(size={self.size}, step={self.step})"


class GrowingWindows:
    """Landmark panes: window ``w`` spans ``[0, (w+1)*step)``.

    Every window sees the entire stream prefix - the incremental-
    recompute shape, where closing window ``w`` means "recompute the
    result over everything through step ``w``".
    """

    kind = "growing"

    def __init__(self, step: float):
        if step <= 0:
            raise ValueError("window step must be positive")
        self.step = step

    def window(self, wid: int) -> Window:
        return Window(wid, 0.0, (wid + 1) * self.step)

    def last_wid(self, time: float) -> int:
        return int(time // self.step)

    def __repr__(self) -> str:
        return f"GrowingWindows(step={self.step})"
