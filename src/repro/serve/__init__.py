"""``repro.serve``: the multi-tenant job service over the scheduler.

The serving layer turns the :mod:`repro.sched` gang-admission queue
from a library into a product: a long-running daemon
(:class:`~repro.serve.daemon.ServeDaemon`) exposes a local HTTP/JSON
API (:mod:`repro.serve.api`) for put-input / submit / status / cancel
/ fetch-output / fetch-log, enforces per-tenant quotas with fair-share
priority aging (:mod:`repro.serve.tenants`), tracks client liveness
with leases (:mod:`repro.serve.leases`), and survives crashes through
an append-only CRC-framed journal on the simulated PFS
(:mod:`repro.serve.journal`).
"""

from repro.serve.api import ServeAPIError, ServeClient
from repro.serve.catalog import SERVE_APPS, merge_output, run_direct
from repro.serve.daemon import ServeConfig, ServeDaemon, ServedJob, ServeError
from repro.serve.journal import JournalError, ServeJournal
from repro.serve.leases import LeaseTable
from repro.serve.tenants import QuotaExceeded, TenantManager, TenantQuota

__all__ = [
    "ServeAPIError",
    "ServeClient",
    "ServeError",
    "SERVE_APPS",
    "merge_output",
    "run_direct",
    "ServeConfig",
    "ServeDaemon",
    "ServedJob",
    "JournalError",
    "ServeJournal",
    "LeaseTable",
    "QuotaExceeded",
    "TenantManager",
    "TenantQuota",
]
