"""Per-tenant quotas and fair-share priority aging.

Quotas bound what any one tenant can take from the shared cluster:

- ``max_queued`` - jobs waiting for admission at once; the submit-time
  check, rejected with a structured 429-style error.
- ``max_concurrent`` - jobs of the tenant co-scheduled into one gang
  round; enforced through the scheduler's external
  :attr:`~repro.sched.scheduler.Scheduler.admission_filter` hook, so a
  flood from one tenant can never fill a whole round.
- ``memory_per_rank`` - ceiling on a job's declared (or estimated)
  per-rank footprint; a tenant cannot reserve more of a rank's memory
  than its budget says, rejected at submit time.

Fair share is *priority aging*: a job's effective admission priority
is its tenant's base weight plus the requested priority, plus
``aging_rate`` for every round it has already waited.  Any queued job
therefore eventually outbids a stream of fresh higher-priority work -
no tenant starves - while fresh priorities still win ties among jobs
of similar age.  The aging hook plugs into
:attr:`~repro.sched.scheduler.Scheduler.priority_fn`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.memory.limits import format_size, parse_size
from repro.sched.scheduler import SchedJob


class QuotaExceeded(Exception):
    """A structured 429-style rejection; carries the violated quota."""

    def __init__(self, tenant: str, quota: str, limit: Any, current: Any):
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.current = current
        super().__init__(
            f"tenant {tenant!r} exceeded quota {quota!r}: "
            f"{current} > limit {limit}")

    def to_json(self) -> dict[str, Any]:
        """The error body a client receives with the 429 status."""
        return {"error": "quota-exceeded", "tenant": self.tenant,
                "quota": self.quota, "limit": self.limit,
                "current": self.current}


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's resource bounds and scheduling weight."""

    #: Jobs allowed to wait in the admission queue at once.
    max_queued: int = 8
    #: Jobs of this tenant co-scheduled into one gang round.
    max_concurrent: int = 2
    #: Ceiling on a job's declared/estimated per-rank footprint
    #: ("64K", bytes, or None for uncapped).
    memory_per_rank: int | str | None = None
    #: Base priority weight added to every job's requested priority.
    base_priority: int = 0

    @property
    def memory_bytes(self) -> int | None:
        if self.memory_per_rank is None:
            return None
        return parse_size(self.memory_per_rank)


class TenantManager:
    """Quota checks + fair-share aging for all tenants of one daemon.

    ``default`` is applied to tenants never explicitly configured -
    an open service where unknown tenants get a small slice, which is
    what a local-first daemon wants.  Pass ``default=None`` to run
    closed (unknown tenants are rejected).
    """

    def __init__(self, quotas: dict[str, TenantQuota] | None = None, *,
                 default: TenantQuota | None = TenantQuota(),
                 aging_rate: float = 1.0, metrics: Any = None):
        self.quotas = dict(quotas or {})
        self.default = default
        #: Effective-priority gain per round spent queued.
        self.aging_rate = aging_rate
        self.metrics = metrics

    def quota(self, tenant: str) -> TenantQuota:
        try:
            return self.quotas[tenant]
        except KeyError:
            if self.default is None:
                raise QuotaExceeded(tenant, "unknown-tenant", 0, 1) \
                    from None
            return self.default

    def _reject(self, exc: QuotaExceeded) -> None:
        if self.metrics is not None:
            self.metrics.inc("serve.rejections.quota")
        raise exc

    # ------------------------------------------------------ submit checks

    def check_submit(self, tenant: str, *, queued: int,
                     footprint: int | None) -> None:
        """Veto a submission that would blow the tenant's quota.

        ``queued`` is the tenant's jobs currently awaiting admission;
        ``footprint`` the new job's declared or estimated per-rank
        bytes (None when unknowable - then only the queue depth check
        applies).
        """
        quota = self.quota(tenant)
        if queued >= quota.max_queued:
            self._reject(QuotaExceeded(
                tenant, "max_queued", quota.max_queued, queued + 1))
        cap = quota.memory_bytes
        if footprint is not None and cap is not None and footprint > cap:
            self._reject(QuotaExceeded(
                tenant, "memory_per_rank", format_size(cap),
                format_size(footprint)))

    # --------------------------------------------------- scheduler hooks

    def admission_filter(self, job: SchedJob,
                         batch: "list[SchedJob]") -> bool:
        """Scheduler hook: cap one tenant's share of a gang round."""
        tenant = job.tenant
        if tenant is None:
            return True
        in_batch = sum(1 for other in batch if other.tenant == tenant)
        return in_batch < self.quota(tenant).max_concurrent

    def priority_fn(self, job: SchedJob, queued_rounds: int) -> float:
        """Scheduler hook: tenant weight + requested + aging."""
        base = 0
        if job.tenant is not None:
            base = self.quota(job.tenant).base_priority
        return base + job.priority + self.aging_rate * queued_rounds

    def install(self, scheduler) -> None:
        """Wire both hooks into a :class:`~repro.sched.scheduler.Scheduler`."""
        scheduler.admission_filter = self.admission_filter
        scheduler.priority_fn = self.priority_fn
