"""Local HTTP/JSON front end for :class:`~repro.serve.daemon.ServeDaemon`.

Stdlib only (:mod:`http.server` threading server + :mod:`urllib` on the
client side) - the service binds loopback by default and speaks plain
JSON, so ``curl`` works as documented in ``docs/serving.md``.

Routes (tenant identity asserted via the ``X-Tenant`` header):

======  ==========================  =======================================
PUT     ``/input/<name>``           stage input bytes for the tenant
POST    ``/jobs``                   submit ``{"app", "input", ...}`` -> 202
GET     ``/jobs``                   list this tenant's jobs
GET     ``/jobs/<id>``              status (renews the lease)
POST    ``/jobs/<id>/lease``        explicit lease renewal
POST    ``/jobs/<id>/cancel``       withdraw a queued job
GET     ``/jobs/<id>/output``       the merged output artifact (bytes)
GET     ``/jobs/<id>/log``          the job's service-side log
GET     ``/jobs/<id>/log?offset=N`` incremental: JSON lines from ``N``
GET     ``/healthz``                daemon health (no tenant needed)
GET     ``/metrics``                ``serve.*`` / ``sched.*`` totals
======  ==========================  =======================================

Error bodies are structured JSON; a quota rejection is HTTP 429 with
:meth:`~repro.serve.tenants.QuotaExceeded.to_json` as the body.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.serve.daemon import ServeDaemon, ServeError
from repro.serve.tenants import QuotaExceeded


class ServeHTTPServer:
    """The daemon's HTTP listener; one thread per request."""

    def __init__(self, daemon: ServeDaemon, host: str = "127.0.0.1",
                 port: int = 0):
        handler = _make_handler(daemon)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> None:
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="serve-http", daemon=True)
        self._thread.start()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


def _make_handler(daemon: ServeDaemon):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # ------------------------------------------------------- plumbing

        def log_message(self, *args) -> None:  # silence stderr spam
            pass

        def _tenant(self) -> str:
            tenant = self.headers.get("X-Tenant")
            if not tenant:
                raise ServeError(400, "missing X-Tenant header")
            return tenant

        def _body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length else b""

        def _json_body(self) -> dict[str, Any]:
            raw = self._body()
            if not raw:
                return {}
            try:
                doc = json.loads(raw)
            except ValueError as exc:
                raise ServeError(400, f"request body is not JSON: {exc}")
            if not isinstance(doc, dict):
                raise ServeError(400, "request body must be a JSON object")
            return doc

        def _reply(self, status: int, doc: Any, *,
                   content_type: str = "application/json") -> None:
            body = doc if isinstance(doc, bytes) else \
                (json.dumps(doc, sort_keys=True) + "\n").encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _dispatch(self, method: str) -> None:
            try:
                status, doc, ctype = self._route(method)
            except QuotaExceeded as exc:
                status, doc, ctype = 429, exc.to_json(), "application/json"
            except ServeError as exc:
                status, doc = exc.status, {"error": str(exc)}
                ctype = "application/json"
            except ValueError as exc:
                status, doc = 400, {"error": str(exc)}
                ctype = "application/json"
            except Exception as exc:  # noqa: BLE001 - surface as a 500
                status, doc = 500, {"error": f"{type(exc).__name__}: {exc}"}
                ctype = "application/json"
            self._reply(status, doc, content_type=ctype)

        # -------------------------------------------------------- routing

        def _route(self, method: str) -> tuple[int, Any, str]:
            path, _, query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            qs = urllib.parse.parse_qs(query)
            js = "application/json"

            if method == "GET" and parts == ["healthz"]:
                return 200, daemon.health(), js
            if method == "GET" and parts == ["metrics"]:
                totals = daemon.cluster.metrics.totals()
                served = {name: value for name, value in totals.items()
                          if name.startswith(("serve.", "sched."))}
                return 200, {"metrics": served}, js

            if method == "PUT" and len(parts) == 2 and parts[0] == "input":
                tenant = self._tenant()
                data = self._body()
                path = daemon.put_input(tenant, parts[1], data)
                return 201, {"path": path, "bytes": len(data)}, js

            if parts and parts[0] == "jobs":
                tenant = self._tenant()
                if method == "POST" and len(parts) == 1:
                    doc = self._json_body()
                    for key in ("app", "input"):
                        if key not in doc:
                            raise ServeError(400, f"missing field {key!r}")
                    job = daemon.submit(
                        tenant, doc["app"], doc["input"],
                        params=doc.get("params") or {},
                        priority=int(doc.get("priority", 0)),
                        footprint=doc.get("footprint"),
                        ttl=doc.get("ttl"))
                    return 202, {
                        "job_id": job.job_id, "state": job.state,
                        "lease_remaining":
                            daemon.leases.remaining(job.job_id)}, js
                if method == "GET" and len(parts) == 1:
                    return 200, {"jobs": daemon.list_jobs(tenant)}, js
                if method == "GET" and len(parts) == 2:
                    return 200, daemon.status(parts[1], tenant), js
                if method == "POST" and len(parts) == 3 and \
                        parts[2] == "lease":
                    doc = self._json_body()
                    return 200, daemon.renew(parts[1], tenant,
                                             doc.get("ttl")), js
                if method == "POST" and len(parts) == 3 and \
                        parts[2] == "cancel":
                    return 200, daemon.cancel(parts[1], tenant), js
                if method == "GET" and len(parts) == 3 and \
                        parts[2] == "output":
                    data = daemon.output(parts[1], tenant)
                    return 200, data, "application/octet-stream"
                if method == "GET" and len(parts) == 3 and \
                        parts[2] == "log":
                    if "offset" in qs:
                        try:
                            offset = int(qs["offset"][0])
                        except ValueError:
                            raise ServeError(
                                400, f"offset must be an integer, got "
                                     f"{qs['offset'][0]!r}")
                        return 200, daemon.job_log_since(
                            parts[1], offset, tenant), js
                    text = daemon.job_log(parts[1], tenant)
                    return 200, text.encode(), "text/plain"

            raise ServeError(404, f"no route {method} {self.path}")

        def do_GET(self) -> None:   # noqa: N802 - http.server casing
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def do_PUT(self) -> None:   # noqa: N802
            self._dispatch("PUT")

    return Handler


# --------------------------------------------------------------- client

class ServeAPIError(Exception):
    """A non-2xx response; carries the status and the error body."""

    def __init__(self, status: int, body: dict[str, Any]):
        self.status = status
        self.body = body
        super().__init__(f"HTTP {status}: "
                         f"{body.get('error', body)}")


class ServeClient:
    """Thin urllib wrapper the CLI subcommands and tests use."""

    def __init__(self, base_url: str, tenant: "str | None" = None,
                 timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    def _request(self, method: str, path: str, *,
                 data: "bytes | None" = None,
                 json_body: "dict | None" = None) -> tuple[int, bytes, str]:
        headers = {}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        if json_body is not None:
            data = json.dumps(json_body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (resp.status, resp.read(),
                        resp.headers.get("Content-Type", ""))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw)
            except ValueError:
                body = {"error": raw.decode(errors="replace")}
            raise ServeAPIError(exc.code, body) from None

    def _json(self, method: str, path: str, **kwargs) -> dict[str, Any]:
        _status, raw, _ctype = self._request(method, path, **kwargs)
        return json.loads(raw)

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._json("GET", "/metrics")["metrics"]

    def put_input(self, name: str, data: bytes) -> dict[str, Any]:
        return self._json("PUT", f"/input/{name}", data=data)

    def submit(self, app: str, input_name: str, *,
               params: "dict | None" = None, priority: int = 0,
               footprint: "int | str | None" = None,
               ttl: "float | None" = None) -> dict[str, Any]:
        doc: dict[str, Any] = {"app": app, "input": input_name}
        if params:
            doc["params"] = params
        if priority:
            doc["priority"] = priority
        if footprint is not None:
            doc["footprint"] = footprint
        if ttl is not None:
            doc["ttl"] = ttl
        return self._json("POST", "/jobs", json_body=doc)

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def renew(self, job_id: str,
              ttl: "float | None" = None) -> dict[str, Any]:
        body = {"ttl": ttl} if ttl is not None else {}
        return self._json("POST", f"/jobs/{job_id}/lease", json_body=body)

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel", json_body={})

    def output(self, job_id: str) -> bytes:
        _status, raw, _ctype = self._request("GET",
                                             f"/jobs/{job_id}/output")
        return raw

    def job_log(self, job_id: str) -> str:
        _status, raw, _ctype = self._request("GET", f"/jobs/{job_id}/log")
        return raw.decode()

    def job_log_since(self, job_id: str, offset: int) -> dict[str, Any]:
        """Incremental fetch: ``{"lines", "next_offset", "state"}``."""
        return self._json("GET", f"/jobs/{job_id}/log?offset={int(offset)}")

    def follow_log(self, job_id: str, *, offset: int = 0,
                   interval: float = 0.05, timeout: float = 120.0):
        """Yield log lines as they appear until the job is terminal.

        The ``repro logs --follow`` loop: poll ``?offset=N``, advance
        the cursor by ``next_offset``, and stop once a terminal-state
        response carries no new lines (nothing more can be written).
        """
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job_log_since(job_id, offset)
            yield from doc["lines"]
            offset = doc["next_offset"]
            if doc["state"] not in ("queued", "running") \
                    and not doc["lines"]:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout}s")
            if not doc["lines"]:
                time.sleep(interval)

    def wait(self, job_id: str, *, timeout: float = 60.0,
             interval: float = 0.05) -> dict[str, Any]:
        """Poll until ``job_id`` reaches a terminal state."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc["state"] not in ("queued", "running"):
                return doc
            if _time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout}s")
            _time.sleep(interval)
