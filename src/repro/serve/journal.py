"""Crash-safe append-only job journal on the simulated PFS.

Every state transition the service promises to remember - an input
registered, a job submitted, admitted, finished, cancelled, or
garbage-collected - is appended to one journal file *before* the
transition is acknowledged to the client.  A daemon that dies at any
instant can therefore be restarted over the same PFS and replayed to
the exact pre-crash queue/running/done state.

Records reuse the PR 1 checkpoint envelope (:func:`repro.ft.checkpoint.
frame` / :func:`~repro.ft.checkpoint.unframe`): each record is a JSON
payload wrapped in the CRC32-checksummed, length-framed, nonce-stamped
frame, and frames are simply concatenated.  The frame is
self-delimiting, so replay scans the file sequentially; the first
record that fails validation (a torn tail left by a crash mid-append)
ends the replay - everything before it is trusted, everything at and
after it never happened.  The journal's nonce is generated once, on
first open, and persisted in a header record framed with a well-known
bootstrap nonce; restarted daemons inherit it, while a journal file
swapped in from a different service lineage fails validation instead
of being silently replayed.

The journal lives on the PFS because the PFS models the storage that
*survives* a daemon crash (exactly like checkpoints); writes go
through the zero-cost staging path - the daemon is a driver process,
not a rank, so it has no virtual clock to charge.  An optional chaos
plan is consulted on every append through the same ``on_write`` hook
the PFS uses, so torn journal appends are injectable.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Iterator

from repro.ft.checkpoint import (
    CheckpointError,
    CheckpointStaleError,
    frame,
    unframe,
)

#: Nonce that stamps the journal's *header* record only; the header's
#: payload carries the per-lineage nonce stamping every later record.
BOOTSTRAP_NONCE = "serve-journal-v1"

#: Distinguishes journal lineages created in one process (tests create
#: many); combined with the PFS object's id it is unique enough for a
#: simulation - a real deployment would use a UUID.
_LINEAGE_SEQ = itertools.count(1)


class JournalError(RuntimeError):
    """The journal file belongs to a different service lineage."""


class _DriverComm:
    """Minimal comm stand-in for chaos hooks: the daemon is rank -1."""

    rank = -1

    def __init__(self, metrics: Any = None):
        self.metrics = metrics


class ServeJournal:
    """One service's append-only journal at ``path`` on ``pfs``.

    ``metrics`` is an optional :class:`~repro.obs.registry.MetricShard`
    (the driver shard); ``chaos`` an optional
    :class:`~repro.ft.injection.ChaosPlan` consulted on appends.
    """

    def __init__(self, pfs, path: str = "serve/journal", *,
                 metrics: Any = None, chaos: Any = None):
        self.pfs = pfs
        self.path = path
        self.metrics = metrics
        self.chaos = chaos
        self._comm = _DriverComm(metrics)
        self.nonce: str | None = None
        self.torn_tail_bytes = 0

    # ----------------------------------------------------------- opening

    def open(self) -> list[dict[str, Any]]:
        """Open (creating if absent) and return every valid record.

        A fresh journal writes its header; an existing one validates
        the header, adopts its lineage nonce, and replays the body.
        The count of replayed records is emitted as
        ``serve.journal.replays``.
        """
        if not self.pfs.exists(self.path):
            self.nonce = f"serve/{id(self.pfs):x}/{next(_LINEAGE_SEQ)}"
            header = frame(json.dumps({"nonce": self.nonce}).encode(),
                           BOOTSTRAP_NONCE)
            self.pfs.store(self.path, header)
            return []
        records = list(self._scan())
        if self.torn_tail_bytes:
            # Truncate the torn tail so future appends extend the valid
            # prefix instead of landing unreachable behind garbage.
            blob = self.pfs.fetch(self.path)
            self.pfs.store(self.path, blob[:-self.torn_tail_bytes])
        if self.metrics is not None:
            self.metrics.inc("serve.journal.replays", len(records))
        return records

    def _scan(self) -> Iterator[dict[str, Any]]:
        blob = self.pfs.fetch(self.path)
        offset = 0
        first = True
        while offset < len(blob):
            nonce = BOOTSTRAP_NONCE if first else self.nonce
            try:
                payload, consumed = self._unframe_at(blob, offset, nonce)
            except CheckpointStaleError as exc:
                if first:
                    raise JournalError(
                        f"journal header at {self.path!r} belongs to a "
                        f"different lineage: {exc}") from exc
                # A record from another lineage mid-file: corruption of
                # the worst kind - stop trusting the file here.
                self.torn_tail_bytes = len(blob) - offset
                return
            except CheckpointError as exc:
                if first:
                    # A journal file whose header cannot be read is not
                    # a journal: refuse to serve rather than silently
                    # starting a new lineage over unknown state.
                    raise JournalError(
                        f"journal at {self.path!r} has an unreadable "
                        f"header: {exc}") from exc
                # Torn tail (crash mid-append): valid prefix wins.
                self.torn_tail_bytes = len(blob) - offset
                return
            offset += consumed
            record = json.loads(payload)
            if first:
                self.nonce = record["nonce"]
                first = False
            else:
                yield record

    @staticmethod
    def _unframe_at(blob: bytes, offset: int,
                    nonce: str) -> tuple[bytes, int]:
        """Validate the frame starting at ``offset``; (payload, size).

        Frames are self-delimiting: the header names the nonce length,
        the tail the payload length.  Parsing beyond ``len(blob)``
        raises through :func:`unframe`'s truncation checks.
        """
        from repro.ft.checkpoint import _HEAD, _TAIL, CKPT_MAGIC

        head_len = len(CKPT_MAGIC) + _HEAD.size
        if len(blob) - offset < head_len:
            raise CheckpointError("truncated header")
        _version, nonce_len = _HEAD.unpack_from(blob,
                                                offset + len(CKPT_MAGIC))
        body = head_len + nonce_len
        if len(blob) - offset < body + _TAIL.size:
            raise CheckpointError("truncated frame")
        payload_len, _crc = _TAIL.unpack_from(blob, offset + body)
        total = body + _TAIL.size + payload_len
        payload = unframe(bytes(blob[offset:offset + total]), nonce)
        return payload, total

    # ---------------------------------------------------------- appending

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record; raises before acknowledging.

        Under chaos injection the append may land torn (the stored
        frame is a prefix) with the crash exception raised *after* the
        bytes hit the PFS - exactly a daemon dying mid-append.  A torn
        record fails CRC validation on replay and is discarded, so an
        un-acknowledged transition never resurrects.
        """
        if self.nonce is None:
            raise JournalError("journal not opened")
        framed = frame(json.dumps(record, sort_keys=True).encode(),
                       self.nonce)
        raise_after = None
        if self.chaos is not None:
            framed, raise_after = self.chaos.on_write(
                self._comm, self.path, framed)
        blob = self.pfs.fetch(self.path) + framed
        self.pfs.store(self.path, blob)
        if raise_after is not None:
            raise raise_after
        if self.metrics is not None:
            self.metrics.inc("serve.journal.records")

    # ---------------------------------------------------------- inspection

    def size(self) -> int:
        return self.pfs.size(self.path) if self.pfs.exists(self.path) else 0

    def dump(self, filename: str) -> int:
        """Copy the raw journal to a real file (CI artifact); bytes."""
        blob = self.pfs.fetch(self.path)
        with open(filename, "wb") as fh:
            fh.write(blob)
        return len(blob)
