"""The service's job catalog: apps a client may submit by name.

An HTTP client cannot ship a Python callable, so the service runs a
closed catalog of named applications (the RPC-style "run job" shape:
a mapper/reducer named by the request, inputs by path).  Each entry
knows how to

- build the per-rank job function the scheduler launches (``ctx``
  flavour, wired into the stage cache / trace / admission services);
- run *direct* on a bare :class:`~repro.cluster.RankEnv` (the
  ``run_with_recovery`` flavour used when a crashed daemon re-admits
  an interrupted job, and what tests compare against);
- merge the per-rank return payloads into one deterministic output
  artifact - the bytes ``fetch-output`` serves, bit-identical for
  identical inputs no matter which path executed the job.

Entries are **pure functions of (app, input path, params)**: a journal
replay rebuilds exactly the job that was submitted.
"""

from __future__ import annotations

import json
from typing import Any

from repro.cluster import RankEnv
from repro.sched.scheduler import SchedJob

#: Apps a client may submit, with the params each accepts.
SERVE_APPS: dict[str, tuple[str, ...]] = {
    "wordcount": ("hint", "partial", "compress"),
    "pagerank": ("hint", "iterations", "compress"),
    "kmeans": ("k", "iterations", "seed"),
    "bfs": ("hint",),
    "stream_wordcount": ("window", "nbatches"),
}


def check_params(app: str, params: dict[str, Any]) -> dict[str, Any]:
    """Validate a submission's app + params; returns normalized params."""
    if app not in SERVE_APPS:
        raise ValueError(f"unknown app {app!r}; catalog: "
                         f"{', '.join(sorted(SERVE_APPS))}")
    allowed = SERVE_APPS[app]
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(f"unknown param(s) {unknown} for {app!r}; "
                         f"allowed: {list(allowed)}")
    return dict(params)


def run_app(app: str, env: RankEnv, path: str,
            params: dict[str, Any], *, ctx: Any = None,
            checkpoint: Any = None) -> Any:
    """Run one catalog app on this rank; returns its JSON payload.

    ``ctx`` is the scheduler's :class:`~repro.sched.scheduler.
    JobContext` (None when run direct); ``checkpoint`` an optional
    :class:`~repro.ft.checkpoint.CheckpointManager` for the recovery
    path.
    """
    if app == "wordcount":
        from repro.apps.wordcount import wordcount_plan

        result = wordcount_plan(
            env, path, ctx=ctx, checkpoint=checkpoint,
            hint=bool(params.get("hint", True)),
            partial=bool(params.get("partial", True)),
            compress=bool(params.get("compress", False)),
            collect=True)
        return {"counts": {k.decode("latin-1"): v
                           for k, v in result.counts.items()},
                "unique": result.unique_words,
                "total": result.total_words}
    if app == "pagerank":
        from repro.apps.pagerank import pagerank_plan

        result = pagerank_plan(
            env, path, ctx=ctx, checkpoint=checkpoint,
            hint=bool(params.get("hint", True)),
            compress=bool(params.get("compress", False)),
            iterations=int(params.get("iterations", 5)))
        return {"ranks": {str(node): score
                          for node, score in result.ranks.items()},
                "iterations": result.iterations,
                "final_delta": result.final_delta}
    if app == "kmeans":
        from repro.apps.kmeans import kmeans_plan

        result = kmeans_plan(
            env, path, int(params.get("k", 4)), ctx=ctx,
            checkpoint=checkpoint,
            max_iterations=int(params.get("iterations", 10)),
            seed=int(params.get("seed", 0)))
        return {"iterations": result.iterations,
                "sizes": list(result.sizes),
                "inertia": result.inertia,
                "centroids": [[float(x) for x in row]
                              for row in result.centroids]}
    if app == "bfs":
        from repro.apps.bfs import bfs_plan

        result = bfs_plan(env, path, ctx=ctx, checkpoint=checkpoint)
        return {"root": result.root, "levels": result.levels,
                "visited": result.visited_local}
    if app == "stream_wordcount":
        from repro.stream.runner import StreamRunner
        from repro.stream.scenarios import StreamWordCount
        from repro.stream.source import StreamSource
        from repro.stream.windows import TumblingWindows

        # Replay the staged text as a document trickle: the input
        # lines split into ``nbatches`` micro-batches, one document
        # per line, windowed over virtual event time.  Checkpointed
        # window state flows through ``checkpoint`` on the recovery
        # path, so a crashed daemon resumes the stream from the last
        # completed window rather than batch zero.
        window = float(params.get("window", 10.0))
        nbatches = max(1, int(params.get("nbatches", 4)))
        lines = [ln for ln in env.pfs.read(env.comm, path).split(b"\n")
                 if ln]
        per = -(-len(lines) // nbatches) if lines else 1
        payload_batches = []
        index = 0
        for i in range(nbatches):
            chunk = lines[i * per:(i + 1) * per]
            payload_batches.append(
                [(index + j, doc) for j, doc in enumerate(chunk)])
            index += len(chunk)
        stream = StreamSource.from_payload_batches(
            "serve-docs", payload_batches, interval=window / 2.0)
        scenario = StreamWordCount(env)
        runner = StreamRunner(env, scenario, stream,
                              TumblingWindows(window), ctx=ctx,
                              checkpoint=checkpoint, pace=False)
        result = runner.run()
        return {"counts": {k.decode("latin-1"): v
                           for k, v in result.final.items()},
                "windows": result.closed,
                "resumed": result.resumed}
    raise ValueError(f"unknown app {app!r}")


def run_direct(app: str, env: RankEnv, path: str,
               params: dict[str, Any], checkpoint: Any = None) -> Any:
    """The bare-env flavour (recovery re-admission, reference runs)."""
    return run_app(app, env, path, params, ctx=None, checkpoint=checkpoint)


def to_sched_job(app: str, job_id: str, path: str,
                 params: dict[str, Any], *, tenant: str | None = None,
                 priority: int = 0, footprint: int | str | None = None,
                 input_bytes: int = 0, probe: Any = None) -> SchedJob:
    """Build the scheduler job for one submission.

    ``probe`` is an optional ``fn(env)`` called on every rank before
    the app runs - the chaos hook the serve tests use to schedule rank
    deaths mid-run at a named point (``serve:job:<id>``).
    """
    def fn(env: RankEnv, ctx) -> Any:
        if probe is not None:
            probe(env)
        return run_app(app, env, path, params, ctx=ctx)

    return SchedJob(name=job_id, fn=fn, priority=priority,
                    footprint=footprint, input_bytes=input_bytes,
                    workload=f"serve:{app}", tenant=tenant)


# ----------------------------------------------------------- output merge

def merge_output(app: str, returns: "list[Any]") -> bytes:
    """Fold per-rank payloads into the job's single output artifact.

    Deterministic and order-insensitive: keyed collections are
    partitioned across ranks (disjoint), so a union then a sort gives
    the same bytes for any gang size or execution path.  Floats are
    rendered with ``repr`` - bit-identical scores stay bit-identical
    text.
    """
    if app in ("wordcount", "stream_wordcount"):
        counts: dict[str, int] = {}
        for payload in returns:
            counts.update(payload["counts"])
        lines = [f"{word}\t{count}" for word, count in sorted(counts.items())]
        return ("\n".join(lines) + "\n").encode()
    if app == "pagerank":
        scores: dict[int, float] = {}
        for payload in returns:
            scores.update({int(n): s for n, s in payload["ranks"].items()})
        lines = [f"{node}\t{score!r}" for node, score in sorted(scores.items())]
        return ("\n".join(lines) + "\n").encode()
    if app == "kmeans":
        # Converged state is identical on every rank; rank 0 speaks.
        return (json.dumps(returns[0], sort_keys=True) + "\n").encode()
    if app == "bfs":
        merged = {"root": returns[0]["root"], "levels": returns[0]["levels"],
                  "visited_total": sum(p["visited"] for p in returns)}
        return (json.dumps(merged, sort_keys=True) + "\n").encode()
    raise ValueError(f"unknown app {app!r}")


def summarize(app: str, returns: "list[Any]") -> dict[str, Any]:
    """Small status-endpoint summary of a finished job."""
    if app == "wordcount":
        return {"unique": sum(p["unique"] for p in returns),
                "total": sum(p["total"] for p in returns)}
    if app == "pagerank":
        return {"iterations": returns[0]["iterations"],
                "final_delta": returns[0]["final_delta"]}
    if app == "kmeans":
        return {"iterations": returns[0]["iterations"],
                "inertia": returns[0]["inertia"]}
    if app == "bfs":
        return {"levels": returns[0]["levels"],
                "visited": sum(p["visited"] for p in returns)}
    if app == "stream_wordcount":
        return {"unique": sum(len(p["counts"]) for p in returns),
                "windows": returns[0]["windows"],
                "resumed": sum(p["resumed"] for p in returns)}
    return {}
