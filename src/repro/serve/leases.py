"""Lease-based ownership of served jobs and their results.

A submission grants the client a lease: a promise that the service
keeps the job's result retrievable while the lease is alive.  Clients
renew by polling (every status read refreshes the lease) or with an
explicit renew call; a client that stops caring simply stops polling,
and once the lease lapses the job's output becomes eligible for TTL
garbage collection - the backpressure valve that keeps a long-running
service from accumulating every result ever computed.

Time here is *wall-clock* (the daemon serves real clients), taken from
an injectable monotonic ``clock`` so tests drive expiry
deterministically with a fake clock.  Virtual time is wrong for
leases: the simulated clock only advances while rounds run, but a
client's attention span is measured in real seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class Lease:
    """One job's liveness contract."""

    job_id: str
    expires_at: float
    ttl: float
    renewals: int = 0


class LeaseTable:
    """All live leases of one daemon; single-writer under daemon lock."""

    def __init__(self, ttl: float = 60.0, *,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: Any = None):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.default_ttl = ttl
        self.clock = clock
        self.metrics = metrics
        self._leases: dict[str, Lease] = {}

    def grant(self, job_id: str, ttl: float | None = None) -> Lease:
        ttl = self.default_ttl if ttl is None else ttl
        lease = Lease(job_id, self.clock() + ttl, ttl)
        self._leases[job_id] = lease
        return lease

    def renew(self, job_id: str, ttl: float | None = None) -> Lease | None:
        """Extend ``job_id``'s lease; ``None`` if it already lapsed.

        A lapsed lease is *not* resurrected: the result may be gone
        (or about to go), and pretending otherwise would turn GC into
        a race the client can lose silently.
        """
        lease = self._leases.get(job_id)
        if lease is None:
            return None
        lease.ttl = lease.ttl if ttl is None else ttl
        lease.expires_at = self.clock() + lease.ttl
        lease.renewals += 1
        return lease

    def remaining(self, job_id: str) -> float | None:
        lease = self._leases.get(job_id)
        if lease is None:
            return None
        return max(0.0, lease.expires_at - self.clock())

    def alive(self, job_id: str) -> bool:
        lease = self._leases.get(job_id)
        return lease is not None and lease.expires_at > self.clock()

    def drop(self, job_id: str) -> None:
        self._leases.pop(job_id, None)

    def sweep(self) -> list[str]:
        """Remove every lapsed lease; returns the expired job ids."""
        now = self.clock()
        expired = [job_id for job_id, lease in self._leases.items()
                   if lease.expires_at <= now]
        for job_id in expired:
            del self._leases[job_id]
            if self.metrics is not None:
                self.metrics.inc("serve.lease.expiries")
        return expired

    def __len__(self) -> int:
        return len(self._leases)
