"""The always-on job service daemon over one simulated cluster.

:class:`ServeDaemon` owns a :class:`~repro.sched.scheduler.Scheduler`
and drives it from a worker loop: clients submit catalog jobs
(:mod:`repro.serve.catalog`) asynchronously, each round gang-admits
what fits (tenant quotas and fair-share aging wired through the
scheduler's external hooks), and results are retained while the
client's lease stays renewed.

Crash safety is journal-first: every externally visible transition
(input registered, job submitted / admitted / finished / cancelled /
collected) is appended to the :class:`~repro.serve.journal.
ServeJournal` *before* it is acknowledged or acted on.  A daemon
killed at any instant restarts by replaying the journal over the same
PFS: finished jobs keep their outputs, queued jobs re-enter the
admission queue in submission order, and jobs that were mid-run are
re-admitted through :func:`~repro.ft.runner.run_with_recovery` - the
same classified-restart driver chaos recovery uses - before serving
resumes.  Identical inputs produce bit-identical outputs on either
path, so a crash is invisible in the artifacts.

The lifecycle follows the service-manager shape (register, health,
route): :meth:`start` binds the HTTP front end and the worker thread,
:meth:`stop` is a graceful drain of neither (the queue persists in
the journal), and :meth:`kill` is the abrupt flavour tests use to
simulate a crash - no goodbye record is written, recovery must work
from whatever the journal holds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster import Cluster
from repro.sched.scheduler import JobOutcome, Scheduler
from repro.serve.catalog import (
    check_params,
    merge_output,
    run_direct,
    summarize,
    to_sched_job,
)
from repro.serve.journal import ServeJournal
from repro.serve.leases import LeaseTable
from repro.serve.tenants import TenantManager
from repro.tools.trace import Trace

#: Served-job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: Terminal-and-collected: the lease lapsed and the output was GC'd.
EXPIRED = "expired"

_TERMINAL = (DONE, FAILED, CANCELLED, EXPIRED)


@dataclass
class ServeConfig:
    """Service-level knobs (scheduler knobs live on the cluster)."""

    lease_ttl: float = 60.0
    aging_rate: float = 1.0
    journal_path: str = "serve/journal"
    input_prefix: str = "serve/in"
    output_prefix: str = "serve/out"
    #: Worker sleep between idle ticks (real seconds).
    tick_interval: float = 0.01


@dataclass
class ServedJob:
    """One submission's full service-side record."""

    job_id: str
    tenant: str
    app: str
    input: str
    params: dict[str, Any]
    priority: int = 0
    footprint: "int | str | None" = None
    state: str = QUEUED
    #: Virtual (scheduler-clock) timestamps for the latency trajectory.
    submit_clock: float = 0.0
    start_clock: "float | None" = None
    done_clock: "float | None" = None
    round: "int | None" = None
    summary: "dict[str, Any] | None" = None
    error: "str | None" = None
    output_path: "str | None" = None
    log: list[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    @property
    def queue_latency(self) -> "float | None":
        if self.start_clock is None:
            return None
        return self.start_clock - self.submit_clock

    def note(self, message: str) -> None:
        self.log.append(message)

    def to_json(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id, "tenant": self.tenant, "app": self.app,
            "input": self.input, "params": self.params,
            "priority": self.priority, "state": self.state,
            "round": self.round, "submit_clock": self.submit_clock,
            "start_clock": self.start_clock, "done_clock": self.done_clock,
            "queue_latency": self.queue_latency, "summary": self.summary,
            "error": self.error, "output_path": self.output_path,
        }


class ServeError(Exception):
    """An API-visible failure with an HTTP-ish status code."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


class ServeDaemon:
    """Multi-tenant job service over ``cluster``; see module docstring.

    ``clock`` feeds the lease table (injectable for tests); ``chaos``
    is an optional :class:`~repro.ft.injection.ChaosPlan` consulted at
    the daemon's own probe points (``serve:submit:<id>``,
    ``serve:job:<id>``) and on journal appends, in addition to
    whatever the cluster itself injects.
    """

    def __init__(self, cluster: Cluster, *,
                 tenants: TenantManager | None = None,
                 config: ServeConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 chaos: Any = None,
                 scaling: Any = None,
                 trace: Trace | None = None):
        self.cluster = cluster
        self.config = config or ServeConfig()
        self.chaos = chaos
        self.trace = trace if trace is not None else Trace()
        self.metrics = cluster.metrics.shard(-1)
        self.tenants = tenants or TenantManager(
            aging_rate=self.config.aging_rate)
        self.tenants.metrics = self.metrics
        #: Optional :class:`~repro.ft.elastic.ScalingPolicy`: the
        #: scheduler consults it between rounds, and every decision it
        #: takes surfaces as a ``serve.autoscale.events`` count.
        self.scaling = scaling
        self.scheduler = Scheduler(cluster, trace=self.trace,
                                   scaling=scaling)
        self._scale_seen = 0
        self.tenants.install(self.scheduler)
        self.scheduler.on_admit = self._on_admit
        self.leases = LeaseTable(self.config.lease_ttl, clock=clock,
                                 metrics=self.metrics)
        self.journal = ServeJournal(cluster.pfs, self.config.journal_path,
                                    metrics=self.metrics, chaos=chaos)
        self.jobs: dict[str, ServedJob] = {}
        self.inputs: dict[str, str] = {}      # "<tenant>/<name>" -> path
        self._seq = 0
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._worker: "threading.Thread | None" = None
        self._http: Any = None
        self.crashed = False
        self.crash_error: "BaseException | None" = None
        self.recovered_jobs: list[str] = []

    # ------------------------------------------------------------ recovery

    def recover(self) -> list[str]:
        """Open the journal and replay to the pre-crash state.

        Must be called (directly or via :meth:`start`) before serving.
        Returns the ids of interrupted mid-run jobs that were
        re-admitted through ``run_with_recovery``.
        """
        with self._lock:
            records = self.journal.open()
            interrupted: list[ServedJob] = []
            requeue: list[ServedJob] = []
            for record in records:
                kind = record["type"]
                if kind == "input":
                    self.inputs[f"{record['tenant']}/{record['name']}"] = \
                        record["path"]
                elif kind == "submit":
                    self._seq = max(self._seq, int(record["seq"]))
                    job = ServedJob(
                        job_id=record["job_id"], tenant=record["tenant"],
                        app=record["app"], input=record["input"],
                        params=record["params"],
                        priority=record.get("priority", 0),
                        footprint=record.get("footprint"),
                        submit_clock=record.get("submit_clock", 0.0))
                    job.note("replay: submitted")
                    self.jobs[job.job_id] = job
                elif kind == "start":
                    job = self.jobs[record["job_id"]]
                    job.state = RUNNING
                    job.round = record.get("round")
                    job.start_clock = record.get("start_clock")
                elif kind == "done":
                    job = self.jobs[record["job_id"]]
                    job.state = DONE
                    job.summary = record.get("summary")
                    job.output_path = record.get("output")
                    job.done_clock = record.get("done_clock")
                elif kind == "failed":
                    job = self.jobs[record["job_id"]]
                    job.state = FAILED
                    job.error = record.get("error")
                elif kind == "cancel":
                    self.jobs[record["job_id"]].state = CANCELLED
                elif kind == "gc":
                    job = self.jobs[record["job_id"]]
                    job.state = EXPIRED
                    job.output_path = None
            for job in sorted(self.jobs.values(),
                              key=lambda j: j.job_id):
                if job.state == RUNNING:
                    interrupted.append(job)
                elif job.state == QUEUED:
                    requeue.append(job)
                if not job.terminal or job.state == DONE:
                    self.leases.grant(job.job_id)
            # Interrupted jobs first: they were admitted before
            # anything still queued, and recovery must not reorder
            # effects a client already observed.
            for job in interrupted:
                self._recover_interrupted(job)
            for job in requeue:
                self._enqueue(job)
                job.note("replay: requeued")
            return [job.job_id for job in interrupted]

    def _recover_interrupted(self, job: ServedJob) -> None:
        """Finish a job the crash cut down mid-run.

        Re-admitted through the classified-restart driver: rank-level
        faults during recovery are themselves absorbed, and a stable
        per-job nonce lets checkpoints written by one recovery attempt
        satisfy the next.
        """
        from repro.ft.runner import run_with_recovery

        app, path, params = job.app, job.input, job.params
        ft = run_with_recovery(
            self.cluster,
            lambda env, ckpt, faults: run_direct(app, env, path, params,
                                                 checkpoint=ckpt),
            faults=self.chaos, job_id=job.job_id,
            nonce=f"serve:{job.job_id}")
        job.note(f"replay: re-admitted via run_with_recovery "
                 f"({ft.attempts} attempt(s))")
        self.recovered_jobs.append(job.job_id)
        self._complete(job, ft.result.returns)

    # ------------------------------------------------------------- inputs

    def put_input(self, tenant: str, name: str, data: bytes) -> str:
        """Stage input bytes for ``tenant``; journaled, returns the path."""
        if not name or "/" in name or name.startswith("."):
            raise ServeError(400, f"invalid input name {name!r}")
        # Unknown tenants are rejected in closed mode.
        self.tenants.quota(tenant)
        with self._lock:
            path = f"{self.config.input_prefix}/{tenant}/{name}"
            self.cluster.pfs.store(path, data)
            self.journal.append({"type": "input", "tenant": tenant,
                                 "name": name, "path": path,
                                 "size": len(data)})
            self.inputs[f"{tenant}/{name}"] = path
        return path

    def _resolve_input(self, tenant: str, name: str) -> str:
        key = f"{tenant}/{name}"
        if key in self.inputs:
            return self.inputs[key]
        # Shared read-only datasets staged outside the service tree
        # (demo inputs): any tenant may read them, none may shadow them.
        if not name.startswith("serve/") and self.cluster.pfs.exists(name):
            return name
        raise ServeError(404, f"input {name!r} not found for tenant "
                              f"{tenant!r}; PUT /input/{name} first")

    # ------------------------------------------------------------- submit

    def _probe(self, tag: str) -> None:
        if self.chaos is not None:
            self.chaos.check(tag, -1)

    def _enqueue(self, job: ServedJob) -> None:
        probe = None
        if self.chaos is not None:
            chaos = self.chaos
            job_id = job.job_id
            def probe(env):
                chaos.check(f"serve:job:{job_id}", env.comm.rank)
        self.scheduler.submit(to_sched_job(
            job.app, job.job_id, job.input, job.params,
            tenant=job.tenant, priority=job.priority,
            footprint=job.footprint,
            input_bytes=self.cluster.pfs.size(job.input),
            probe=probe))

    def submit(self, tenant: str, app: str, input_name: str, *,
               params: dict[str, Any] | None = None, priority: int = 0,
               footprint: "int | str | None" = None,
               ttl: "float | None" = None) -> ServedJob:
        """Accept one job: validate, quota-check, journal, enqueue.

        The journal append is the commit point - a crash before it
        means the client saw an error and the job never existed; a
        crash after it means replay resubmits, even if the scheduler
        never heard of the job (the mid-submit crash window).
        """
        params = check_params(app, params or {})
        with self._lock:
            path = self._resolve_input(tenant, input_name)
            queued = sum(1 for j in self.jobs.values()
                         if j.tenant == tenant and j.state == QUEUED)
            sched_job = to_sched_job(app, "quota-probe", path, params,
                                     tenant=tenant, footprint=footprint,
                                     input_bytes=self.cluster.pfs.size(path))
            estimate = self.scheduler.estimator.estimate(
                sched_job, sched_job.config or _default_config())
            self.tenants.check_submit(tenant, queued=queued,
                                      footprint=estimate)
            self._seq += 1
            job = ServedJob(job_id=f"job-{self._seq:04d}", tenant=tenant,
                            app=app, input=path, params=params,
                            priority=priority, footprint=footprint,
                            submit_clock=self.scheduler.clock)
            self.journal.append({
                "type": "submit", "job_id": job.job_id, "seq": self._seq,
                "tenant": tenant, "app": app, "input": path,
                "params": params, "priority": priority,
                "footprint": footprint,
                "submit_clock": job.submit_clock})
            self.jobs[job.job_id] = job
            job.note(f"submitted by {tenant} (app={app}, input={path})")
            # Mid-submit crash window: journaled but not yet enqueued.
            self._probe(f"serve:submit:{job.job_id}")
            self._enqueue(job)
            self.leases.grant(job.job_id, ttl)
            self.metrics.inc("serve.submissions")
        return job

    # ------------------------------------------------------------ serving

    def _on_admit(self, jobs, round_no: int) -> None:
        """Scheduler hook: journal every admission before the launch."""
        for sched_job in jobs:
            job = self.jobs.get(sched_job.name)
            if job is None:     # library user sharing the scheduler
                continue
            job.state = RUNNING
            job.round = round_no
            job.start_clock = self.scheduler.clock
            job.note(f"admitted into round {round_no}")
            self.journal.append({"type": "start", "job_id": job.job_id,
                                 "round": round_no,
                                 "start_clock": job.start_clock})
            self.metrics.inc("serve.admissions")

    def _complete(self, job: ServedJob, returns: "list[Any]") -> None:
        """Store the output artifact, then journal the completion."""
        output = merge_output(job.app, returns)
        path = f"{self.config.output_prefix}/{job.job_id}"
        self.cluster.pfs.store(path, output)
        job.summary = summarize(job.app, returns)
        job.output_path = path
        job.done_clock = self.scheduler.clock
        self.journal.append({"type": "done", "job_id": job.job_id,
                             "output": path, "summary": job.summary,
                             "done_clock": job.done_clock})
        job.state = DONE
        job.note(f"done ({len(output)} output bytes)")
        self.metrics.inc("serve.completions")
        if not self.leases.alive(job.job_id):
            self._collect(job)

    def _finish(self, outcome: JobOutcome) -> None:
        job = self.jobs.get(outcome.name)
        if job is None:
            return
        if outcome.failed:
            job.error = outcome.error
            self.journal.append({"type": "failed", "job_id": job.job_id,
                                 "error": outcome.error})
            job.state = FAILED
            job.note(f"failed: {outcome.error}")
            self.metrics.inc("serve.completions")
            return
        self._complete(job, outcome.returns)

    def tick(self) -> bool:
        """One worker iteration: a round if work waits, then lease GC.

        Returns whether any job was admitted (progress signal for the
        worker's idle backoff).  Exceptions escaping the launch - a
        rank death the scheduler does not absorb - are daemon crashes;
        the worker loop records them and stops serving, exactly like a
        real process dying.
        """
        with self._lock:
            progressed = False
            if self.scheduler.queue_depth:
                for outcome in self.scheduler.run_round():
                    self._finish(outcome)
                progressed = self.scheduler.last_admitted > 0
            scaled = len(self.scheduler.scale_events) - self._scale_seen
            if scaled > 0:
                self.metrics.inc("serve.autoscale.events", scaled)
                self._scale_seen += scaled
            self._sweep()
            self.metrics.set_gauge("serve.queue.depth",
                                   self.scheduler.queue_depth)
            return progressed

    def _sweep(self) -> None:
        """Lease GC: lapsed leases release their jobs' outputs."""
        for job_id in self.leases.sweep():
            job = self.jobs.get(job_id)
            if job is None:
                continue
            if job.state == DONE:
                self._collect(job)
            # Queued/running jobs keep running - the journal already
            # promised them - but _complete sees the dead lease and
            # collects the output the moment it exists.

    def _collect(self, job: ServedJob) -> None:
        """Garbage-collect one lease-expired output."""
        if job.output_path is not None:
            self.cluster.pfs.delete(job.output_path)
        self.journal.append({"type": "gc", "job_id": job.job_id})
        job.state = EXPIRED
        job.output_path = None
        job.note("output garbage-collected (lease expired)")
        self.metrics.inc("serve.gc.outputs")

    # ----------------------------------------------------------- queries

    def _get(self, job_id: str, tenant: "str | None" = None) -> ServedJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(404, f"no such job {job_id!r}")
        if tenant is not None and job.tenant != tenant:
            raise ServeError(403, f"job {job_id!r} belongs to another "
                                  f"tenant")
        return job

    def status(self, job_id: str, tenant: "str | None" = None) -> dict:
        """Job status; polling renews the caller's lease."""
        with self._lock:
            job = self._get(job_id, tenant)
            lease = self.leases.renew(job_id)
            doc = job.to_json()
            doc["lease_remaining"] = self.leases.remaining(job_id)
            doc["lease_renewals"] = lease.renewals if lease else None
            return doc

    def renew(self, job_id: str, tenant: "str | None" = None,
              ttl: "float | None" = None) -> dict:
        with self._lock:
            job = self._get(job_id, tenant)
            lease = self.leases.renew(job_id, ttl)
            if lease is None:
                raise ServeError(410, f"lease for {job_id!r} already "
                                      f"expired")
            return {"job_id": job.job_id,
                    "lease_remaining": self.leases.remaining(job_id)}

    def cancel(self, job_id: str, tenant: "str | None" = None) -> dict:
        """Withdraw a queued job; running/terminal jobs refuse (409)."""
        with self._lock:
            job = self._get(job_id, tenant)
            if job.state != QUEUED or \
                    self.scheduler.cancel(job_id) is None:
                raise ServeError(409, f"job {job_id!r} is {job.state}; "
                                      f"only queued jobs can be cancelled")
            self.journal.append({"type": "cancel", "job_id": job.job_id})
            job.state = CANCELLED
            job.note("cancelled by owner")
            self.metrics.inc("serve.cancellations")
            self.leases.drop(job_id)
            return {"job_id": job_id, "state": CANCELLED}

    def output(self, job_id: str, tenant: "str | None" = None) -> bytes:
        with self._lock:
            job = self._get(job_id, tenant)
            if job.state == EXPIRED:
                raise ServeError(410, f"output of {job_id!r} was "
                                      f"garbage-collected (lease expired)")
            if job.state != DONE:
                raise ServeError(409, f"job {job_id!r} is {job.state}, "
                                      f"not done")
            self.leases.renew(job_id)
            return self.cluster.pfs.fetch(job.output_path)

    def job_log(self, job_id: str, tenant: "str | None" = None) -> str:
        with self._lock:
            job = self._get(job_id, tenant)
            self.metrics.inc("serve.log.fetches")
            return "\n".join(job.log) + "\n"

    def job_log_since(self, job_id: str, offset: int,
                      tenant: "str | None" = None) -> dict:
        """Incremental log fetch: lines from ``offset`` on, plus the
        cursor for the next call - the ``?offset=N`` / ``--follow``
        contract.  ``state`` lets a follower stop once the job is
        terminal *and* it has drained every line."""
        with self._lock:
            job = self._get(job_id, tenant)
            offset = max(0, min(int(offset), len(job.log)))
            self.metrics.inc("serve.log.fetches")
            return {"job_id": job.job_id, "state": job.state,
                    "lines": list(job.log[offset:]),
                    "next_offset": len(job.log)}

    def list_jobs(self, tenant: "str | None" = None) -> list[dict]:
        with self._lock:
            return [job.to_json() for job in self.jobs.values()
                    if tenant is None or job.tenant == tenant]

    def health(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {"status": "crashed" if self.crashed else "ok",
                    "queue_depth": self.scheduler.queue_depth,
                    "rounds": self.scheduler.rounds_run,
                    "virtual_clock": self.scheduler.clock,
                    "jobs": states,
                    "leases": len(self.leases)}

    # ---------------------------------------------------------- lifecycle

    def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Recover, bind the HTTP API, start the worker; returns port."""
        from repro.serve.api import ServeHTTPServer

        if self.journal.nonce is None:
            self.recover()
        self._http = ServeHTTPServer(self, host, port)
        self._http.start()
        self._stop.clear()
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="serve-worker", daemon=True)
        self._worker.start()
        return self._http.port

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                progressed = self.tick()
            except Exception as exc:
                # A failure the scheduler does not absorb kills the
                # process in a real deployment; serving stops and the
                # journal is what the next incarnation recovers from.
                self.crashed = True
                self.crash_error = exc
                return
            if not progressed:
                self._stop.wait(self.config.tick_interval)
            else:
                # Yield so API threads waiting on the lock get a turn
                # between rounds even under a full queue.
                time.sleep(0)

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until the queue is empty and nothing is running."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.crashed:
                return False
            with self._lock:
                busy = self.scheduler.queue_depth or any(
                    j.state == RUNNING for j in self.jobs.values())
            if not busy:
                return True
            time.sleep(0.005)
        return False

    def stop(self) -> None:
        """Graceful stop: finish the current round, keep the journal."""
        self._stop.set()
        if self._worker is not None:
            self._worker.join(timeout=60.0)
            self._worker = None
        if self._http is not None:
            self._http.shutdown()
            self._http = None

    def kill(self) -> None:
        """Abrupt stop (test harness for crashes).

        Identical to :meth:`stop` at the thread level - a Python
        thread cannot be killed mid-launch - but semantically the
        daemon is now *gone*: nothing was drained, no shutdown record
        exists, and the only way back is a new daemon replaying the
        journal.
        """
        self.stop()


def _default_config():
    from repro.core.config import MimirConfig

    return MimirConfig()
