"""k-means clustering as iterative MapReduce.

The other canonical iterative analytics workload: per iteration, map
assigns every point to its nearest centroid and emits
``(centroid_id, (sum_xyz, count))`` partial aggregates (combined
map-side - the textbook use of a combiner); the partial reduce sums
them; new centroids are broadcast through the control plane.
Converges when no centroid moves more than ``tolerance``.

Verified against a plain NumPy Lloyd's-algorithm reference in the
tests; exercises combine + partial reduction with *structured* values
(packed float sums).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.cluster import RankEnv
from repro.core import KVLayout, Mimir, MimirConfig
from repro.datasets.points import POINT_RECORD_SIZE

#: Value layout: three float64 coordinate sums + one u64 count.
_AGG = struct.Struct("<dddQ")
#: KV-hint: fixed 4-byte centroid id key, fixed 32-byte aggregate.
KM_HINT_LAYOUT = KVLayout(key_len=4, val_len=_AGG.size)

_U32 = struct.Struct("<I")


def pack_agg(sums: np.ndarray, count: int) -> bytes:
    return _AGG.pack(float(sums[0]), float(sums[1]), float(sums[2]), count)


def unpack_agg(data: bytes) -> tuple[np.ndarray, int]:
    x, y, z, count = _AGG.unpack(data)
    return np.array([x, y, z]), count


def km_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    sa, ca = unpack_agg(a)
    sb, cb = unpack_agg(b)
    return pack_agg(sa + sb, ca + cb)


@dataclass
class KMeansResult:
    """Converged clustering (identical on every rank)."""

    centroids: np.ndarray          # (k, 3)
    iterations: int
    #: Points per centroid in the final assignment.
    sizes: list[int]
    inertia: float                 # sum of squared distances (global)


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid index per point (vectorised)."""
    # (n, k) squared distances via broadcasting.
    diff = points[:, None, :] - centroids[None, :, :]
    return np.argmin((diff * diff).sum(axis=2), axis=1)


def _load_points(env: RankEnv, path: str,
                 config: MimirConfig) -> np.ndarray:
    """This rank's block of points, charged to the tracker."""
    from repro.io.readers import iter_binary_chunks

    blocks = list(iter_binary_chunks(env, path, POINT_RECORD_SIZE,
                                     config.input_chunk_size))
    points = (np.frombuffer(b"".join(blocks), dtype="<f4")
              .reshape(-1, 3).astype(np.float64))
    env.tracker.allocate(points.nbytes, "kmeans_points")
    return points


def _init_centroids(env: RankEnv, points: np.ndarray, k: int,
                    seed: int) -> np.ndarray:
    """Deterministic global initialisation: every rank contributes a
    sample; all ranks then run the same farthest-point selection over
    the pooled samples (k-means++-style), so the initial centroids
    span the whole dataset rather than one rank's contiguous block.
    """
    comm = env.comm
    rng = np.random.default_rng(seed)
    nsample = min(max(4 * k, 8), len(points)) if len(points) else 0
    local_sample = points[
        rng.choice(len(points), size=nsample, replace=False)
    ] if nsample else np.zeros((0, 3))
    pooled = np.array([row for part in comm.allgather(local_sample.tolist())
                       for row in part])
    chosen = [int(np.random.default_rng(seed).integers(len(pooled)))]
    while len(chosen) < k:
        dists = np.min(
            ((pooled[:, None, :] - pooled[chosen][None, :, :]) ** 2
             ).sum(axis=2), axis=1)
        dists[chosen] = -1.0
        chosen.append(int(np.argmax(dists)))
    return pooled[chosen].copy()


def _update_centroids(env: RankEnv, records, centroids: np.ndarray,
                      k: int) -> tuple[np.ndarray, list[int], float]:
    """Merge per-centroid aggregates globally (small control data:
    ``k`` entries) and recompute centroids everywhere."""
    local = {int(_U32.unpack(key)[0]): unpack_agg(value)
             for key, value in records}
    merged = env.comm.allgather(
        [(cid, sums.tolist(), count)
         for cid, (sums, count) in local.items()])
    new_centroids = centroids.copy()
    sizes = [0] * k
    for part in merged:
        for cid, sums, count in part:
            new_centroids[cid] = np.array(sums) / count
            sizes[cid] = count
    shift = float(np.abs(new_centroids - centroids).max())
    return new_centroids, sizes, shift


def kmeans_mimir(env: RankEnv, path: str, k: int,
                 config: MimirConfig | None = None, *,
                 max_iterations: int = 50, tolerance: float = 1e-6,
                 hint: bool = True, compress: bool = True,
                 seed: int = 0) -> KMeansResult:
    """Cluster the points in a binary PFS file into ``k`` groups."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(KM_HINT_LAYOUT)
    mimir = Mimir(env, config)
    comm = env.comm

    # Load this rank's block of points once (iterative jobs re-read
    # from memory, like the paper's multistage inputs).
    points = _load_points(env, path, config)

    total = comm.allsum(len(points))
    if total < k:
        env.tracker.free(points.nbytes, "kmeans_points")
        raise ValueError(f"k={k} exceeds the {total} available points")

    centroids = _init_centroids(env, points, k, seed)

    iterations = 0
    sizes: list[int] = []
    for iterations in range(1, max_iterations + 1):
        assignment = _assign(points, centroids) if len(points) else \
            np.zeros(0, dtype=np.int64)

        def map_fn(ctx, _item):
            for cid in range(k):
                mask = assignment == cid
                count = int(mask.sum())
                if count:
                    ctx.emit(_U32.pack(cid),
                             pack_agg(points[mask].sum(axis=0), count))

        kvs = mimir.map_items([None], map_fn,
                              combine_fn=km_combine if compress else None)
        summed = mimir.partial_reduce(kvs, km_combine,
                                      out_layout=config.layout)

        centroids, sizes, shift = _update_centroids(
            env, summed.consume(), centroids, k)
        if shift <= tolerance:
            break

    assignment = _assign(points, centroids) if len(points) else \
        np.zeros(0, dtype=np.int64)
    local_inertia = float(
        ((points - centroids[assignment]) ** 2).sum()) if len(points) else 0.0
    inertia = comm.allsum(local_inertia)
    env.tracker.free(points.nbytes, "kmeans_points")
    return KMeansResult(centroids, iterations, sizes, inertia)


def kmeans_plan(env: RankEnv, path: str, k: int,
                config: MimirConfig | None = None, *,
                max_iterations: int = 50, tolerance: float = 1e-6,
                hint: bool = True, compress: bool = True, seed: int = 0,
                ctx=None, cache=None, trace=None,
                checkpoint=None, profile=None) -> KMeansResult:
    """k-means on the dataflow Plan API; numerically identical to
    :func:`kmeans_mimir` (shared load/init/update helpers, identical
    per-iteration MapReduce lowering)."""
    from repro.sched.executor import PlanRunner
    from repro.sched.plan import Plan

    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if ctx is not None:
        config = config or ctx.config
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(KM_HINT_LAYOUT)
    comm = env.comm
    plan = Plan("kmeans", config)
    if ctx is not None:
        runner = ctx.runner(plan, profile=profile, checkpoint=checkpoint)
    else:
        runner = PlanRunner(env, plan, cache=cache, profile=profile,
                            trace=trace, checkpoint=checkpoint)

    points = _load_points(env, path, config)
    total = comm.allsum(len(points))
    if total < k:
        env.tracker.free(points.nbytes, "kmeans_points")
        raise ValueError(f"k={k} exceeds the {total} available points")
    centroids = _init_centroids(env, points, k, seed)

    def body(r, _i, state):
        centroids, _sizes, _shift = state
        assignment = _assign(points, centroids) if len(points) else \
            np.zeros(0, dtype=np.int64)

        def map_fn(pctx, _item, _assignment=assignment):
            for cid in range(k):
                mask = _assignment == cid
                count = int(mask.sum())
                if count:
                    pctx.emit(_U32.pack(cid),
                              pack_agg(points[mask].sum(axis=0), count))

        summed = (r.plan.source([None], name="assignments")
                  .map(map_fn, combine_fn=km_combine if compress else None,
                       name="aggregate")
                  .partial_reduce(km_combine, out_layout=config.layout,
                                  name="centroids"))
        return _update_centroids(env, r.stream(summed), centroids, k)

    (centroids, sizes, _shift), iterations = runner.iterate(
        (centroids, [], float("inf")), body,
        until=lambda state: state[2] <= tolerance,
        max_iters=max_iterations)

    assignment = _assign(points, centroids) if len(points) else \
        np.zeros(0, dtype=np.int64)
    local_inertia = float(
        ((points - centroids[assignment]) ** 2).sum()) if len(points) else 0.0
    inertia = comm.allsum(local_inertia)
    env.tracker.free(points.nbytes, "kmeans_points")
    return KMeansResult(centroids, iterations, sizes, inertia)
