"""WordCount (WC): the paper's single-pass benchmark.

Counts occurrences of each unique word.  Key = the word (variable
length), value = a 64-bit count.  The KV-hint declares the key
NUL-terminated and the value fixed at 8 bytes (exactly the paper's
WordCount example); KV compression and partial reduction both use
count summation, which is commutative and associative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import RankEnv
from repro.core import (
    CSTRING,
    KVLayout,
    Mimir,
    MimirConfig,
    batch_kernel,
    pack_u64,
    unpack_u64,
)
from repro.mrmpi import MRMPI, MRMPIConfig

#: The paper's WordCount KV-hint: NUL-terminated key, 8-byte value.
WC_HINT_LAYOUT = KVLayout(key_len=CSTRING, val_len=8)

_ONE = pack_u64(1)


def wc_map(ctx, chunk: bytes) -> None:
    """Emit ``(word, 1)`` for every word of the chunk."""
    for word in chunk.split():
        ctx.emit(word, _ONE)


@batch_kernel
def wc_map_batch(ctx, chunk: bytes) -> None:
    """Batch form of :func:`wc_map`: one dispatch per input chunk.

    Emits the same ``(word, 1)`` records in the same order as the
    per-record form, so the shuffle traffic is byte-identical.
    """
    ctx.emit_run(chunk.split(), _ONE)


def wc_reduce(ctx, key: bytes, values: list[bytes]) -> None:
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


@batch_kernel
def wc_reduce_batch(ctx, groups) -> None:
    """Batch form of :func:`wc_reduce`: one dispatch per KMV page."""
    for key, values in groups:
        ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def wc_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    """Sum two partial counts (combine / partial-reduce callback)."""
    return pack_u64(unpack_u64(a) + unpack_u64(b))


@batch_kernel
def wc_fold_batch(bucket, batch) -> None:
    """Batch partial-reduce fold: sum counts over one KV page."""
    get = bucket.get
    put = bucket.set
    for key, value in batch.pairs_bytes():
        existing = get(key)
        if existing is None:
            put(key, value)
        else:
            put(key, pack_u64(unpack_u64(existing) + unpack_u64(value)))


@dataclass
class WordCountResult:
    """Per-rank WordCount outcome."""

    unique_words: int
    total_words: int
    counts: dict[bytes, int] | None = None
    #: Encoded KV bytes this rank shipped through the shuffle (the
    #: paper's Figure 7 metric; 0 for the MR-MPI driver).
    kv_bytes: int = 0


def wordcount_mimir(env: RankEnv, path: str,
                    config: MimirConfig | None = None, *,
                    hint: bool = False, compress: bool = False,
                    partial: bool = False, batch: bool = False,
                    collect: bool = False) -> WordCountResult:
    """Run WordCount through Mimir with the selected optimizations.

    ``batch=True`` swaps every kernel for its whole-page form; counts
    and intermediate byte streams are identical either way.
    """
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(WC_HINT_LAYOUT)
    mimir = Mimir(env, config)
    kvs = mimir.map_text_file(path, wc_map_batch if batch else wc_map,
                              combine_fn=wc_combine if compress else None)
    if partial:
        out = mimir.partial_reduce(kvs,
                                   wc_fold_batch if batch else wc_combine,
                                   out_layout=config.layout)
    else:
        out = mimir.reduce(kvs, wc_reduce_batch if batch else wc_reduce,
                           out_layout=config.layout)
    unique = len(out)
    total = sum(unpack_u64(v) for _, v in out.records())
    counts = ({k: unpack_u64(v) for k, v in out.records()}
              if collect else None)
    out.free()
    return WordCountResult(unique, total, counts,
                           kv_bytes=mimir.last_map_stats.get("kv_bytes", 0))


def wordcount_plan(env: RankEnv, path: str,
                   config: MimirConfig | None = None, *,
                   hint: bool = False, compress: bool = False,
                   partial: bool = False, collect: bool = False,
                   ctx=None, cache=None, trace=None,
                   checkpoint=None, profile=None) -> WordCountResult:
    """WordCount on the dataflow Plan API; identical counts to
    :func:`wordcount_mimir`."""
    from repro.sched.executor import PlanRunner
    from repro.sched.plan import Plan

    if ctx is not None:
        config = config or ctx.config
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(WC_HINT_LAYOUT)
    plan = Plan("wordcount", config)
    words = plan.read_text(path, name="input").map(
        wc_map, combine_fn=wc_combine if compress else None,
        name="count-map")
    if partial:
        out = words.partial_reduce(wc_combine, out_layout=config.layout,
                                   name="counts")
    else:
        out = words.reduce(wc_reduce, out_layout=config.layout,
                           name="counts")
    if ctx is not None:
        runner = ctx.runner(plan, profile=profile, checkpoint=checkpoint)
    else:
        runner = PlanRunner(env, plan, cache=cache, profile=profile,
                            trace=trace, checkpoint=checkpoint)
    pairs = runner.collect(out)
    unique = len(pairs)
    total = sum(unpack_u64(v) for _, v in pairs)
    counts = {k: unpack_u64(v) for k, v in pairs} if collect else None
    return WordCountResult(unique, total, counts,
                           kv_bytes=runner.mimir.last_map_stats.get(
                               "kv_bytes", 0))


def wordcount_mrmpi(env: RankEnv, path: str,
                    config: MRMPIConfig | None = None, *,
                    compress: bool = False,
                    collect: bool = False) -> WordCountResult:
    """Run WordCount through the MR-MPI baseline."""
    mr = MRMPI(env, config)
    mr.map_text_file(path, wc_map)
    if compress:
        mr.compress(wc_combine)
    mr.aggregate()
    mr.convert()
    mr.reduce(wc_reduce)
    pairs = mr.collect()
    unique = len(pairs)
    total = sum(unpack_u64(v) for _, v in pairs)
    counts = {k: unpack_u64(v) for k, v in pairs} if collect else None
    mr.free()
    return WordCountResult(unique, total, counts)
