"""Breadth-first search (BFS): iterative map-only traversal.

Graph500 kernel 2 as a MapReduce job, the paper's third benchmark:

1. *Graph partitioning*: map over the edge list emitting both
   directions of every edge, shuffled so each vertex's adjacency lands
   on its owner rank (``vertex mod p``).  Each rank then builds a local
   adjacency table.  This is where BFS's peak memory occurs - the
   paper notes KV compression cannot help it.
2. *Traversal*: per level, a map-only job over the current frontier
   emits ``(neighbour, parent)`` to the neighbour's owner; unvisited
   neighbours become the next frontier.  KV compression (keeping one
   candidate parent per neighbour) shrinks traversal traffic only.

Keys and values are 64-bit vertex ids - the KV-hint fixed-length case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import RankEnv
from repro.core import KVLayout, Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets.graph500 import EDGE_RECORD_SIZE
from repro.mrmpi import MRMPI, MRMPIConfig

#: KV-hint layout for BFS: fixed 8-byte vertex ids on both sides.
BFS_HINT_LAYOUT = KVLayout(key_len=8, val_len=8)

#: Accounting estimate for one adjacency edge / one visited entry.
_ADJ_EDGE_BYTES = 8
_ADJ_VERTEX_BYTES = 64
_VISITED_ENTRY_BYTES = 24


def vertex_partitioner(key: bytes, nprocs: int) -> int:
    """Owner of a vertex: its id modulo the number of ranks."""
    return int.from_bytes(key[:8], "little") % nprocs


def bfs_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    """Keep one candidate parent per neighbour (deduplication)."""
    return a if a <= b else b


@dataclass
class BFSResult:
    """Per-rank traversal outcome."""

    root: int
    levels: int
    visited_local: int
    #: Local slice of the BFS tree: vertex -> parent (root maps to itself).
    parents: dict[int, int] | None = None


def _emit_edges(ctx, chunk: bytes) -> None:
    """Map callback for partitioning: both directions of each edge."""
    edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
    for u, v in edges.tolist():
        if u == v:
            continue  # self-loops are dropped, as in Graph500 BFS
        ub, vb = pack_u64(u), pack_u64(v)
        ctx.emit(ub, vb)
        ctx.emit(vb, ub)


class _Adjacency:
    """Rank-local adjacency table with tracker accounting."""

    def __init__(self, env: RankEnv):
        self.env = env
        self.table: dict[int, list[int]] = {}
        self.accounted = 0

    def add(self, vertex: int, neighbour: int) -> None:
        bucket = self.table.get(vertex)
        if bucket is None:
            delta = _ADJ_VERTEX_BYTES + _ADJ_EDGE_BYTES
            self.env.tracker.allocate(delta, "adjacency")
            self.accounted += delta
            self.table[vertex] = [neighbour]
        else:
            self.env.tracker.allocate(_ADJ_EDGE_BYTES, "adjacency")
            self.accounted += _ADJ_EDGE_BYTES
            bucket.append(neighbour)

    def neighbours(self, vertex: int) -> list[int]:
        return self.table.get(vertex, [])

    def min_vertex(self) -> int | None:
        return min(self.table) if self.table else None

    def free(self) -> None:
        if self.accounted:
            self.env.tracker.free(self.accounted, "adjacency")
        self.accounted = 0
        self.table.clear()


class _Visited:
    """Rank-local BFS tree (vertex -> parent) with accounting."""

    def __init__(self, env: RankEnv):
        self.env = env
        self.parents: dict[int, int] = {}

    def try_visit(self, vertex: int, parent: int) -> bool:
        if vertex in self.parents:
            return False
        self.env.tracker.allocate(_VISITED_ENTRY_BYTES, "visited")
        self.parents[vertex] = parent
        return True

    def free(self) -> None:
        if self.parents:
            self.env.tracker.free(
                _VISITED_ENTRY_BYTES * len(self.parents), "visited")
        self.parents.clear()


def _pick_root(env: RankEnv, adj: _Adjacency) -> int:
    """Global minimum vertex that has at least one edge."""
    local = adj.min_vertex()
    sentinel = 1 << 62
    root = env.comm.allreduce(sentinel if local is None else local, min)
    if root == sentinel:
        raise ValueError("graph has no edges")
    return root


def _traverse(env: RankEnv, adj: _Adjacency, root: int,
              run_level) -> tuple[int, _Visited]:
    """Shared frontier-expansion loop; ``run_level`` does the shuffle."""
    comm = env.comm
    visited = _Visited(env)
    frontier: list[int] = []
    if vertex_partitioner(pack_u64(root), comm.size) == comm.rank:
        visited.try_visit(root, root)
        frontier.append(root)
    levels = 0
    while comm.allsum(len(frontier)) > 0:
        levels += 1
        arrivals = run_level(frontier)
        frontier = []
        for key, value in arrivals:
            vertex = unpack_u64(key)
            parent = unpack_u64(value)
            if visited.try_visit(vertex, parent):
                frontier.append(vertex)
    return levels, visited


def bfs_mimir(env: RankEnv, path: str,
              config: MimirConfig | None = None, *,
              hint: bool = False, compress: bool = False,
              keep_parents: bool = False) -> BFSResult:
    """Run BFS through Mimir."""
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(BFS_HINT_LAYOUT)
    mimir = Mimir(env, config)

    # Phase 1: graph partitioning (the memory peak).
    edge_kvs = mimir.map_binary_file(path, EDGE_RECORD_SIZE, _emit_edges,
                                     partitioner=vertex_partitioner)
    adj = _Adjacency(env)
    for key, value in edge_kvs.consume():
        adj.add(unpack_u64(key), unpack_u64(value))

    root = _pick_root(env, adj)

    # Phase 2: map-only traversal.
    def run_level(frontier: list[int]):
        def expand(ctx, vertex: int):
            vb = pack_u64(vertex)
            for nbr in adj.neighbours(vertex):
                ctx.emit(pack_u64(nbr), vb)

        kvs = mimir.map_items(frontier, expand,
                              partitioner=vertex_partitioner,
                              combine_fn=bfs_combine if compress else None)
        yield from kvs.consume()

    levels, visited = _traverse(env, adj, root, run_level)
    result = BFSResult(root, levels, len(visited.parents),
                       dict(visited.parents) if keep_parents else None)
    visited.free()
    adj.free()
    return result


def bfs_plan(env: RankEnv, path: str,
             config: MimirConfig | None = None, *,
             hint: bool = False, compress: bool = False,
             keep_parents: bool = False, reuse: bool = True,
             ctx=None, cache=None, trace=None,
             checkpoint=None, profile=None) -> BFSResult:
    """BFS on the dataflow Plan API; identical traversal to
    :func:`bfs_mimir`.

    The partitioned edge list (the memory peak) becomes a cacheable
    plan stage: with ``reuse`` a repeated traversal - or another job
    over the same graph - streams the materialized container instead
    of re-shuffling every edge.  Each level's frontier expansion is a
    per-level salted source stage.
    """
    from repro.sched.executor import PlanRunner
    from repro.sched.plan import Plan

    if ctx is not None:
        config = config or ctx.config
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(BFS_HINT_LAYOUT)
    plan = Plan("bfs", config)
    if ctx is not None:
        runner = ctx.runner(plan, profile=profile, checkpoint=checkpoint)
    else:
        runner = PlanRunner(env, plan, cache=cache, profile=profile,
                            trace=trace, checkpoint=checkpoint)

    edges_ds = plan.read_binary(path, EDGE_RECORD_SIZE, name="edges")
    adj_ds = edges_ds.map(_emit_edges, partitioner=vertex_partitioner,
                          name="partition")
    if reuse:
        adj_ds.cache()

    # Phase 1: graph partitioning (the memory peak).
    adj = _Adjacency(env)
    for key, value in runner.stream(adj_ds):
        adj.add(unpack_u64(key), unpack_u64(value))

    root = _pick_root(env, adj)

    # Phase 2: map-only traversal, one salted source stage per level.
    level = {"n": 0}

    def run_level(frontier: list[int]):
        level["n"] += 1
        salt = f"L{level['n']}"

        def expand(pctx, vertex: int):
            vb = pack_u64(vertex)
            for nbr in adj.neighbours(vertex):
                pctx.emit(pack_u64(nbr), vb)

        arrivals = (plan.source(list(frontier), name="frontier", salt=salt)
                    .map(expand, partitioner=vertex_partitioner,
                         combine_fn=bfs_combine if compress else None,
                         name="expand", salt=salt))
        yield from runner.stream(arrivals)

    levels, visited = _traverse(env, adj, root, run_level)
    result = BFSResult(root, levels, len(visited.parents),
                       dict(visited.parents) if keep_parents else None)
    visited.free()
    adj.free()
    return result


def bfs_mrmpi(env: RankEnv, path: str,
              config: MRMPIConfig | None = None, *,
              compress: bool = False,
              keep_parents: bool = False) -> BFSResult:
    """Run BFS through the MR-MPI baseline."""
    mr = MRMPI(env, config, partitioner=vertex_partitioner)

    mr.map_binary_file(path, EDGE_RECORD_SIZE, _emit_edges)
    mr.aggregate()
    adj = _Adjacency(env)
    for key, value in mr.collect():
        adj.add(unpack_u64(key), unpack_u64(value))
    mr.free()

    root = _pick_root(env, adj)

    def run_level(frontier: list[int]):
        def expand(ctx, vertex: int):
            vb = pack_u64(vertex)
            for nbr in adj.neighbours(vertex):
                ctx.emit(pack_u64(nbr), vb)

        mr.map_items(frontier, expand)
        if compress:
            mr.compress(bfs_combine)
        mr.aggregate()
        arrivals = mr.collect()
        mr.free()
        return arrivals

    levels, visited = _traverse(env, adj, root, run_level)
    result = BFSResult(root, levels, len(visited.parents),
                       dict(visited.parents) if keep_parents else None)
    visited.free()
    adj.free()
    return result
