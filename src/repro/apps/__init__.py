"""The paper's three evaluation benchmarks, on both frameworks.

- WordCount (WC): single-pass MapReduce (Section IV-A).
- Octree clustering (OC): iterative multi-stage MapReduce over 3-D
  points (Estrada et al.'s ligand-classification algorithm).
- Breadth-first search (BFS): iterative map-only traversal of a
  Graph500 Kronecker graph.

Every app exposes ``<name>_mimir(env, ...)`` and ``<name>_mrmpi(env,
...)`` drivers that run the same logical algorithm through either
framework, which is what the figure-reproduction benches sweep.

Two further classic MapReduce workloads (PageRank and connected
components) extend the suite beyond the paper's three benchmarks.
"""

from repro.apps.bfs import bfs_mimir, bfs_mrmpi
from repro.apps.components import components_mimir
from repro.apps.inverted_index import inverted_index_mimir
from repro.apps.join import join_mimir
from repro.apps.kmeans import kmeans_mimir
from repro.apps.octree import octree_mimir, octree_mrmpi
from repro.apps.pagerank import pagerank_mimir
from repro.apps.terasort import terasort_mimir
from repro.apps.wordcount import wordcount_mimir, wordcount_mrmpi

__all__ = [
    "bfs_mimir",
    "bfs_mrmpi",
    "components_mimir",
    "inverted_index_mimir",
    "join_mimir",
    "kmeans_mimir",
    "octree_mimir",
    "octree_mrmpi",
    "pagerank_mimir",
    "terasort_mimir",
    "wordcount_mimir",
    "wordcount_mrmpi",
]
