"""Inverted index: the original MapReduce motivating application.

Builds, from a directory of documents on the PFS, a mapping from each
word to the sorted list of documents containing it.  Map emits
``(word, doc_id)`` for every word occurrence (whole documents are
assigned round-robin to ranks); reduce deduplicates and sorts each
word's posting list.  Exercises multi-file input, variable-length
values, and an optional combine step that merges posting lists
map-side.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.cluster import RankEnv
from repro.core import Mimir, MimirConfig
from repro.io.readers import rank_files

_U32 = struct.Struct("<I")


def pack_postings(doc_ids: list[int]) -> bytes:
    """Serialise a sorted, deduplicated posting list."""
    return b"".join(_U32.pack(d) for d in doc_ids)


def unpack_postings(data: bytes) -> list[int]:
    return [_U32.unpack_from(data, off)[0]
            for off in range(0, len(data), 4)]


def merge_postings(key: bytes, a: bytes, b: bytes) -> bytes:
    """Combine callback: merge two posting lists (sorted union)."""
    merged = sorted(set(unpack_postings(a)) | set(unpack_postings(b)))
    return pack_postings(merged)


@dataclass
class InvertedIndexResult:
    """Per-rank slice of the index."""

    #: word -> sorted list of document ids (this rank's words only).
    index: dict[bytes, list[int]]
    documents: dict[int, str]  # doc id -> path (same on every rank)

    @property
    def nwords_local(self) -> int:
        return len(self.index)


def inverted_index_mimir(env: RankEnv, prefix: str,
                         config: MimirConfig | None = None, *,
                         compress: bool = False) -> InvertedIndexResult:
    """Build an inverted index over every document under ``prefix``."""
    config = config or MimirConfig()
    mimir = Mimir(env, config)

    paths = env.pfs.listdir(prefix)
    if not paths:
        raise FileNotFoundError(f"no documents under {prefix!r}")
    documents = dict(enumerate(paths))
    doc_of = {path: i for i, path in documents.items()}

    def feed(ctx) -> None:
        for path in rank_files(env, paths):
            doc = _U32.pack(doc_of[path])
            data = env.pfs.read(env.comm, path)
            for word in data.split():
                ctx.emit(word, doc)

    kvs = mimir.map_items([None], lambda ctx, _item: feed(ctx),
                          combine_fn=merge_postings if compress else None)

    def reduce_fn(ctx, key: bytes, values: list[bytes]) -> None:
        docs: set[int] = set()
        for value in values:
            docs.update(unpack_postings(value))
        ctx.emit(key, pack_postings(sorted(docs)))

    out = mimir.reduce(kvs, reduce_fn)
    index = {word: unpack_postings(value) for word, value in out.records()}
    out.free()
    return InvertedIndexResult(index, documents)
