"""PageRank as an iterative MapReduce job.

Beyond the paper's three benchmarks, PageRank is the canonical
iterative MapReduce workload (and a staple of the MR-MPI literature the
paper builds on).  Per iteration: map over the rank-local vertex table
emitting ``rank/out_degree`` contributions to each out-neighbour;
reduce sums contributions; damping and the dangling-vertex mass are
applied with small control-plane allreduces.  Exercises ``map_kvs``
(iterative KV sources), fixed-length KV-hints (8-byte ids, 8-byte
float64 ranks), and partial reduction (summing is invariant).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.apps.bfs import vertex_partitioner
from repro.cluster import RankEnv
from repro.core import (
    KVLayout,
    Mimir,
    MimirConfig,
    batch_kernel,
    pack_u64,
    unpack_u64,
)
from repro.datasets.graph500 import EDGE_RECORD_SIZE

#: KV-hint for PageRank: fixed 8-byte vertex id and 8-byte float64.
PR_HINT_LAYOUT = KVLayout(key_len=8, val_len=8)

_F64 = struct.Struct("<d")


def pack_f64(value: float) -> bytes:
    return _F64.pack(value)


def unpack_f64(data: bytes) -> float:
    return _F64.unpack(data)[0]


def pr_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    """Sum two partial rank contributions."""
    return _F64.pack(_F64.unpack(a)[0] + _F64.unpack(b)[0])


@batch_kernel
def pr_fold_batch(bucket, batch) -> None:
    """Batch partial-reduce fold: sum contributions over one KV page.

    Folds in record order with ``existing + incoming``, exactly like
    the per-record :func:`pr_combine` path, so the float sums are
    bitwise identical.
    """
    get = bucket.get
    put = bucket.set
    for key, value in batch.pairs_bytes():
        existing = get(key)
        if existing is None:
            put(key, value)
        else:
            put(key, _F64.pack(_F64.unpack(existing)[0] +
                               _F64.unpack(value)[0]))


@dataclass
class PageRankResult:
    """Per-rank outcome."""

    iterations: int
    #: This rank's vertices and their final scores.
    ranks: dict[int, float]
    #: Global L1 change of the final iteration.
    final_delta: float


def _build_adjacency(mimir: Mimir, path: str) -> dict[int, list[int]]:
    """Partition the directed edge list by source-vertex owner."""

    def emit_edges(ctx, chunk: bytes) -> None:
        edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
        for u, v in edges.tolist():
            ctx.emit(pack_u64(u), pack_u64(v))

    edge_kvs = mimir.map_binary_file(path, EDGE_RECORD_SIZE, emit_edges,
                                     partitioner=vertex_partitioner)
    collected: dict[int, set[int]] = {}
    for key, value in edge_kvs.consume():
        collected.setdefault(unpack_u64(key), set()).add(unpack_u64(value))
    # Parallel edges collapse to one link (simple-digraph semantics).
    return {v: sorted(targets) for v, targets in collected.items()}


def pagerank_mimir(env: RankEnv, path: str,
                   config: MimirConfig | None = None, *,
                   damping: float = 0.85, iterations: int = 20,
                   tolerance: float = 1e-9, hint: bool = False,
                   compress: bool = False,
                   batch: bool = False) -> PageRankResult:
    """Run PageRank over a directed edge list on the PFS.

    Vertices are every id that appears as a source or target; dangling
    vertices redistribute their mass uniformly, so the scores sum to 1.
    ``batch=True`` emits each vertex's contribution fan-out as one run
    and folds with the batch kernel; scores are bitwise identical.
    """
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(PR_HINT_LAYOUT)
    mimir = Mimir(env, config)
    comm = env.comm

    adjacency = _build_adjacency(mimir, path)
    # Batch mode emits pre-packed target keys in one run per vertex.
    packed = ({v: [pack_u64(t) for t in targets]
               for v, targets in adjacency.items()} if batch else None)

    # Vertex universe: sources are local; targets may be unowned here.
    def emit_vertices(ctx, chunk: bytes) -> None:
        edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
        for v in np.unique(edges).tolist():
            ctx.emit(pack_u64(v), b"\x00" * 8)

    vertex_kvs = mimir.map_binary_file(
        path, EDGE_RECORD_SIZE, emit_vertices,
        partitioner=vertex_partitioner,
        combine_fn=lambda k, a, b: a)  # dedup
    vertices = sorted({unpack_u64(k) for k, _ in vertex_kvs.consume()})
    nvertices = comm.allsum(len(vertices))
    if nvertices == 0:
        raise ValueError("graph has no vertices")

    scores = {v: 1.0 / nvertices for v in vertices}
    delta = float("inf")
    done = 0
    for done in range(1, iterations + 1):
        # Dangling mass is shared through the control plane.
        dangling = sum(score for v, score in scores.items()
                       if not adjacency.get(v))
        dangling = comm.allsum(dangling)

        if batch:
            def emit_contributions(ctx, items=tuple(scores.items())):
                for v, score in items:
                    targets = packed.get(v)
                    if targets:
                        ctx.emit_run(targets,
                                     _F64.pack(score / len(targets)))
        else:
            def emit_contributions(ctx, items=tuple(scores.items())):
                for v, score in items:
                    targets = adjacency.get(v)
                    if targets:
                        share = _F64.pack(score / len(targets))
                        for t in targets:
                            ctx.emit(pack_u64(t), share)

        contrib_kvs = mimir.map_items(
            [None], lambda ctx, _item: emit_contributions(ctx),
            partitioner=vertex_partitioner,
            combine_fn=pr_combine if compress else None)
        summed = mimir.partial_reduce(contrib_kvs,
                                      pr_fold_batch if batch else pr_combine,
                                      out_layout=config.layout)

        base = (1.0 - damping) / nvertices + \
            damping * dangling / nvertices
        new_scores = {v: base for v in vertices}
        for key, value in summed.consume():
            v = unpack_u64(key)
            new_scores[v] = base + damping * unpack_f64(value)

        delta = comm.allsum(sum(abs(new_scores[v] - scores[v])
                                for v in vertices))
        scores = new_scores
        if delta < tolerance:
            break

    return PageRankResult(done, {v: scores[v] for v in vertices}, delta)


def pagerank_plan(env: RankEnv, path: str,
                  config: MimirConfig | None = None, *,
                  damping: float = 0.85, iterations: int = 20,
                  tolerance: float = 1e-9, hint: bool = False,
                  compress: bool = False, reuse: bool = True,
                  ctx=None, cache=None, trace=None,
                  checkpoint=None, profile=None) -> PageRankResult:
    """PageRank on the dataflow Plan API; results match
    :func:`pagerank_mimir` bit for bit.

    The adjacency list becomes a plan stage, numerically sorted so the
    per-iteration contribution map emits in exactly the order the
    dict-driven original does (bitwise-identical float sums), and -
    with ``reuse`` - cached: iterations (and later jobs building the
    same stage) reread the materialized container instead of
    re-shuffling the edge list.  ``ctx`` wires the runner into a
    :class:`~repro.sched.scheduler.Scheduler`'s cache/trace; standalone
    callers may pass ``cache``/``trace``/``checkpoint`` directly.
    """
    from repro.sched.executor import PlanRunner
    from repro.sched.plan import Plan

    if ctx is not None:
        config = config or ctx.config
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(PR_HINT_LAYOUT)
    comm = env.comm
    plan = Plan("pagerank", config)

    def emit_edges(pctx, chunk: bytes) -> None:
        edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
        for u, v in edges.tolist():
            pctx.emit(pack_u64(u), pack_u64(v))

    def dedup_targets(rctx, key: bytes, values: list[bytes]) -> None:
        targets = sorted({unpack_u64(v) for v in values})
        rctx.emit(key, b"".join(pack_u64(t) for t in targets))

    edges = plan.read_binary(path, EDGE_RECORD_SIZE, name="edges")
    adjacency = (edges
                 .map(emit_edges, partitioner=vertex_partitioner,
                      name="edge-shuffle")
                 .reduce(dedup_targets, out_layout=KVLayout(),
                         name="adjacency")
                 .sort_local(key_fn=lambda k, v: unpack_u64(k),
                             name="adjacency-sorted"))
    if reuse:
        adjacency.cache()

    def emit_vertices(pctx, chunk: bytes) -> None:
        edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
        for v in np.unique(edges).tolist():
            pctx.emit(pack_u64(v), b"\x00" * 8)

    vertex_ds = edges.map(emit_vertices, partitioner=vertex_partitioner,
                          combine_fn=lambda k, a, b: a, name="vertices")

    if ctx is not None:
        runner = ctx.runner(plan, profile=profile, checkpoint=checkpoint)
    else:
        runner = PlanRunner(env, plan, cache=cache, profile=profile,
                            trace=trace, checkpoint=checkpoint)

    vertices = sorted({unpack_u64(k) for k, _ in runner.stream(vertex_ds)})
    nvertices = comm.allsum(len(vertices))
    if nvertices == 0:
        raise ValueError("graph has no vertices")
    has_out = {unpack_u64(k) for k, _ in runner.stream(adjacency)}

    def body(r, _i, state):
        scores, _delta = state
        dangling = sum(score for v, score in scores.items()
                       if v not in has_out)
        dangling = comm.allsum(dangling)

        def contrib(pctx, key: bytes, value: bytes, _scores=scores) -> None:
            share = _F64.pack(_scores[unpack_u64(key)] / (len(value) // 8))
            for t in np.frombuffer(value, dtype="<u8").tolist():
                pctx.emit(pack_u64(t), share)

        summed = (adjacency
                  .map(contrib, partitioner=vertex_partitioner,
                       combine_fn=pr_combine if compress else None,
                       name="contrib")
                  .partial_reduce(pr_combine, out_layout=config.layout,
                                  name="scores"))

        base = (1.0 - damping) / nvertices + \
            damping * dangling / nvertices
        new_scores = {v: base for v in vertices}
        for key, value in r.stream(summed):
            new_scores[unpack_u64(key)] = base + damping * unpack_f64(value)
        delta = comm.allsum(sum(abs(new_scores[v] - scores[v])
                                for v in vertices))
        return new_scores, delta

    initial = ({v: 1.0 / nvertices for v in vertices}, float("inf"))
    (scores, delta), done = runner.iterate(
        initial, body, until=lambda state: state[1] < tolerance,
        max_iters=iterations)
    return PageRankResult(done, {v: scores[v] for v in vertices}, delta)
