"""PageRank as an iterative MapReduce job.

Beyond the paper's three benchmarks, PageRank is the canonical
iterative MapReduce workload (and a staple of the MR-MPI literature the
paper builds on).  Per iteration: map over the rank-local vertex table
emitting ``rank/out_degree`` contributions to each out-neighbour;
reduce sums contributions; damping and the dangling-vertex mass are
applied with small control-plane allreduces.  Exercises ``map_kvs``
(iterative KV sources), fixed-length KV-hints (8-byte ids, 8-byte
float64 ranks), and partial reduction (summing is invariant).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.apps.bfs import vertex_partitioner
from repro.cluster import RankEnv
from repro.core import KVLayout, Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets.graph500 import EDGE_RECORD_SIZE

#: KV-hint for PageRank: fixed 8-byte vertex id and 8-byte float64.
PR_HINT_LAYOUT = KVLayout(key_len=8, val_len=8)

_F64 = struct.Struct("<d")


def pack_f64(value: float) -> bytes:
    return _F64.pack(value)


def unpack_f64(data: bytes) -> float:
    return _F64.unpack(data)[0]


def pr_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    """Sum two partial rank contributions."""
    return _F64.pack(_F64.unpack(a)[0] + _F64.unpack(b)[0])


@dataclass
class PageRankResult:
    """Per-rank outcome."""

    iterations: int
    #: This rank's vertices and their final scores.
    ranks: dict[int, float]
    #: Global L1 change of the final iteration.
    final_delta: float


def _build_adjacency(mimir: Mimir, path: str) -> dict[int, list[int]]:
    """Partition the directed edge list by source-vertex owner."""

    def emit_edges(ctx, chunk: bytes) -> None:
        edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
        for u, v in edges.tolist():
            ctx.emit(pack_u64(u), pack_u64(v))

    edge_kvs = mimir.map_binary_file(path, EDGE_RECORD_SIZE, emit_edges,
                                     partitioner=vertex_partitioner)
    collected: dict[int, set[int]] = {}
    for key, value in edge_kvs.consume():
        collected.setdefault(unpack_u64(key), set()).add(unpack_u64(value))
    # Parallel edges collapse to one link (simple-digraph semantics).
    return {v: sorted(targets) for v, targets in collected.items()}


def pagerank_mimir(env: RankEnv, path: str,
                   config: MimirConfig | None = None, *,
                   damping: float = 0.85, iterations: int = 20,
                   tolerance: float = 1e-9, hint: bool = False,
                   compress: bool = False) -> PageRankResult:
    """Run PageRank over a directed edge list on the PFS.

    Vertices are every id that appears as a source or target; dangling
    vertices redistribute their mass uniformly, so the scores sum to 1.
    """
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(PR_HINT_LAYOUT)
    mimir = Mimir(env, config)
    comm = env.comm

    adjacency = _build_adjacency(mimir, path)

    # Vertex universe: sources are local; targets may be unowned here.
    def emit_vertices(ctx, chunk: bytes) -> None:
        edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
        for v in np.unique(edges).tolist():
            ctx.emit(pack_u64(v), b"\x00" * 8)

    vertex_kvs = mimir.map_binary_file(
        path, EDGE_RECORD_SIZE, emit_vertices,
        partitioner=vertex_partitioner,
        combine_fn=lambda k, a, b: a)  # dedup
    vertices = sorted({unpack_u64(k) for k, _ in vertex_kvs.consume()})
    nvertices = comm.allsum(len(vertices))
    if nvertices == 0:
        raise ValueError("graph has no vertices")

    scores = {v: 1.0 / nvertices for v in vertices}
    delta = float("inf")
    done = 0
    for done in range(1, iterations + 1):
        # Dangling mass is shared through the control plane.
        dangling = sum(score for v, score in scores.items()
                       if not adjacency.get(v))
        dangling = comm.allsum(dangling)

        def emit_contributions(ctx, items=tuple(scores.items())):
            for v, score in items:
                targets = adjacency.get(v)
                if targets:
                    share = _F64.pack(score / len(targets))
                    for t in targets:
                        ctx.emit(pack_u64(t), share)

        contrib_kvs = mimir.map_items(
            [None], lambda ctx, _item: emit_contributions(ctx),
            partitioner=vertex_partitioner,
            combine_fn=pr_combine if compress else None)
        summed = mimir.partial_reduce(contrib_kvs, pr_combine,
                                      out_layout=config.layout)

        base = (1.0 - damping) / nvertices + \
            damping * dangling / nvertices
        new_scores = {v: base for v in vertices}
        for key, value in summed.consume():
            v = unpack_u64(key)
            new_scores[v] = base + damping * unpack_f64(value)

        delta = comm.allsum(sum(abs(new_scores[v] - scores[v])
                                for v in vertices))
        scores = new_scores
        if delta < tolerance:
            break

    return PageRankResult(done, {v: scores[v] for v in vertices}, delta)
