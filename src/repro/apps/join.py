"""Reduce-side equi-join: the relational workhorse on MapReduce.

Joins two datasets of ``(key, payload)`` records: map tags every
record with its source relation and shuffles by key; reduce separates
the tags and emits the cross product of the two sides per key.  The
standard repartition-join of the MapReduce literature, exercising
mixed-relation values and multi-emit reduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster import RankEnv
from repro.core import Mimir, MimirConfig

_TAG_LEFT = b"L"
_TAG_RIGHT = b"R"


def tag_value(side: bytes, payload: bytes) -> bytes:
    return side + payload


def untag_value(value: bytes) -> tuple[bytes, bytes]:
    return value[:1], value[1:]


@dataclass
class JoinResult:
    """Per-rank slice of the joined relation."""

    #: (key, left payload, right payload) triples owned by this rank.
    rows: list[tuple[bytes, bytes, bytes]]

    def __len__(self) -> int:
        return len(self.rows)


def join_mimir(env: RankEnv,
               left: Iterable[tuple[bytes, bytes]],
               right: Iterable[tuple[bytes, bytes]],
               config: MimirConfig | None = None) -> JoinResult:
    """Equi-join this rank's shares of two relations.

    ``left`` and ``right`` are this rank's local records of each
    relation; the shuffle brings all records of one key to one rank,
    where the reduce emits every (left, right) pairing.
    """
    config = config or MimirConfig()
    mimir = Mimir(env, config)

    def feed(ctx, _item) -> None:
        for key, payload in left:
            ctx.emit(key, tag_value(_TAG_LEFT, payload))
        for key, payload in right:
            ctx.emit(key, tag_value(_TAG_RIGHT, payload))

    kvs = mimir.map_items([None], feed)

    rows: list[tuple[bytes, bytes, bytes]] = []

    def reduce_fn(ctx, key: bytes, values: list[bytes]) -> None:
        lefts, rights = [], []
        for value in values:
            side, payload = untag_value(value)
            (lefts if side == _TAG_LEFT else rights).append(payload)
        for lv in lefts:
            for rv in rights:
                rows.append((key, lv, rv))
                ctx.emit(key, tag_value(b"J", lv + b"\x1f" + rv))

    out = mimir.reduce(kvs, reduce_fn)
    out.free()
    return JoinResult(rows)
