"""TeraSort: globally sort fixed-size records into one output file.

The canonical sorting benchmark: records carry a random fixed-size key
and an opaque payload; the job range-partitions by sampled splitters
(:meth:`Mimir.global_sort`) and writes a single globally ordered file
via MPI-IO-style offset writes.  The validator checks the output the
way the real benchmark does: order, record count, and content
preservation (checksum).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.cluster import RankEnv
from repro.core import KVBatch, KVLayout, Mimir, MimirConfig

#: Scaled-down TeraSort record: 4-byte key + 12-byte payload.
KEY_SIZE = 4
PAYLOAD_SIZE = 12
RECORD_SIZE = KEY_SIZE + PAYLOAD_SIZE

TS_LAYOUT = KVLayout(key_len=KEY_SIZE, val_len=PAYLOAD_SIZE)


def generate_records(nrecords: int, seed: int = 0) -> bytes:
    """Random records in the on-PFS binary format."""
    if nrecords < 0:
        raise ValueError(f"nrecords must be non-negative, got {nrecords}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=nrecords * RECORD_SIZE,
                        dtype=np.uint8).tobytes()


def checksum(data: bytes) -> int:
    """Order-independent record checksum (sum of record CRCs)."""
    return sum(zlib.crc32(data[off : off + RECORD_SIZE])
               for off in range(0, len(data), RECORD_SIZE)) & 0xFFFFFFFF


@dataclass
class TeraSortResult:
    """Per-rank outcome."""

    records_local: int
    output_path: str


def terasort_mimir(env: RankEnv, input_path: str, output_path: str,
                   config: MimirConfig | None = None, *,
                   batch: bool = False) -> TeraSortResult:
    """Sort ``input_path`` into one globally ordered ``output_path``.

    The on-PFS record format *is* the fixed/fixed KV encoding, so the
    batch map wraps each input chunk in a :class:`KVBatch` and routes
    the records as arena slices - no per-record slicing at all.  The
    output file is byte-identical in both modes.
    """
    config = (config or MimirConfig()).with_layout(TS_LAYOUT)
    mimir = Mimir(env, config)

    if batch:
        def map_fn(ctx, chunk: bytes) -> None:
            ctx.emit_batch(KVBatch(chunk, TS_LAYOUT))
    else:
        def map_fn(ctx, chunk: bytes) -> None:
            for off in range(0, len(chunk), RECORD_SIZE):
                ctx.emit(chunk[off : off + KEY_SIZE],
                         chunk[off + KEY_SIZE : off + RECORD_SIZE])

    kvs = mimir.map_binary_file(input_path, RECORD_SIZE, map_fn,
                                layout=TS_LAYOUT)
    ordered = mimir.global_sort(kvs, batch=batch)
    nlocal = len(ordered)
    mimir.write_output_global(ordered, output_path,
                              render=lambda k, v: k + v)
    ordered.free()
    return TeraSortResult(nlocal, output_path)


def validate_output(input_data: bytes, output_data: bytes) -> list[str]:
    """TeraValidate: order, cardinality, and content checks."""
    problems = []
    if len(output_data) != len(input_data):
        problems.append(
            f"size mismatch: {len(output_data)} vs {len(input_data)}")
        return problems
    prev = None
    for off in range(0, len(output_data), RECORD_SIZE):
        key = output_data[off : off + KEY_SIZE]
        if prev is not None and key < prev:
            problems.append(f"order violation at record {off // RECORD_SIZE}")
            break
        prev = key
    if checksum(input_data) != checksum(output_data):
        problems.append("checksum mismatch (records altered or lost)")
    return problems
