"""Connected components via label-propagation MapReduce.

Another classic iterative workload from the MapReduce-over-MPI
literature: every vertex starts labelled with its own id; each
iteration, vertices send their current label to their neighbours and
adopt the minimum label seen; the job converges when no label changes
anywhere (an ``any_true`` allreduce).  The final label of a vertex is
the smallest vertex id in its component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.bfs import vertex_partitioner
from repro.cluster import RankEnv
from repro.core import KVLayout, Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets.graph500 import EDGE_RECORD_SIZE

#: KV-hint: fixed 8-byte vertex ids on both sides.
CC_HINT_LAYOUT = KVLayout(key_len=8, val_len=8)


def cc_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    """Keep the smaller candidate label (little-endian u64 compare)."""
    return a if unpack_u64(a) <= unpack_u64(b) else b


@dataclass
class ComponentsResult:
    """Per-rank outcome."""

    iterations: int
    #: This rank's vertices mapped to their component label.
    labels: dict[int, int]

    @property
    def component_count_local(self) -> int:
        return len({label for label in self.labels.values()
                    if label in self.labels})


def components_mimir(env: RankEnv, path: str,
                     config: MimirConfig | None = None, *,
                     hint: bool = False, compress: bool = False,
                     max_iterations: int = 64) -> ComponentsResult:
    """Label-propagation connected components over an edge list."""
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(CC_HINT_LAYOUT)
    mimir = Mimir(env, config)
    comm = env.comm

    # Partition the (undirected) adjacency by vertex owner.
    def emit_edges(ctx, chunk: bytes) -> None:
        edges = np.frombuffer(chunk, dtype="<u8").reshape(-1, 2)
        for u, v in edges.tolist():
            if u != v:
                ub, vb = pack_u64(u), pack_u64(v)
                ctx.emit(ub, vb)
                ctx.emit(vb, ub)

    edge_kvs = mimir.map_binary_file(path, EDGE_RECORD_SIZE, emit_edges,
                                     partitioner=vertex_partitioner)
    adjacency: dict[int, list[int]] = {}
    for key, value in edge_kvs.consume():
        adjacency.setdefault(unpack_u64(key), []).append(unpack_u64(value))

    labels = {v: v for v in adjacency}
    iterations = 0
    while iterations < max_iterations:
        iterations += 1

        def propagate(ctx, _item, items=tuple(labels.items())):
            for v, label in items:
                lb = pack_u64(label)
                for nbr in adjacency[v]:
                    ctx.emit(pack_u64(nbr), lb)

        arrivals = mimir.map_items(
            [None], propagate, partitioner=vertex_partitioner,
            combine_fn=cc_combine if compress else None)
        best = mimir.partial_reduce(arrivals, cc_combine,
                                    out_layout=config.layout)

        changed = False
        for key, value in best.consume():
            v = unpack_u64(key)
            label = unpack_u64(value)
            if label < labels[v]:
                labels[v] = label
                changed = True
        if not comm.any_true(changed):
            break

    return ComponentsResult(iterations, labels)
