"""Octree clustering (OC): iterative multi-stage MapReduce.

The MapReduce classification algorithm of Estrada et al.: points live
in the unit cube; at refinement level L each point falls into one of
8**L octants (a 3L-bit Morton code).  Per level, map emits
``(octant, 1)`` for every point whose parent octant was dense at the
previous level; reduce counts; octants holding at least ``density``
of all points stay dense and are refined further.  The algorithm stops
when no octant is dense (the previous level's dense octants are the
clusters) or at ``max_level``.

Key = 1 level byte + 8-byte Morton code (fixed 9 bytes - the KV-hint
case for fixed-length graph/geometry keys the paper calls out);
value = 64-bit count.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.cluster import RankEnv
from repro.core import KVLayout, Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets.points import POINT_RECORD_SIZE
from repro.mrmpi import MRMPI, MRMPIConfig

#: KV-hint layout for OC: 9-byte key (level + Morton), 8-byte count.
OC_HINT_LAYOUT = KVLayout(key_len=9, val_len=8)

_KEY = struct.Struct("<BQ")
_ONE = pack_u64(1)


def morton_codes(points: np.ndarray, level: int) -> np.ndarray:
    """Vectorised 3-D Morton codes at ``level`` (3*level bits)."""
    if level <= 0 or level > 21:
        raise ValueError(f"level must be in 1..21, got {level}")
    side = 1 << level
    cells = np.minimum((points * side).astype(np.uint64), side - 1)
    codes = np.zeros(len(points), dtype=np.uint64)
    ix, iy, iz = cells[:, 0], cells[:, 1], cells[:, 2]
    for bit in range(level):
        codes |= ((ix >> np.uint64(bit)) & np.uint64(1)) << np.uint64(3 * bit)
        codes |= ((iy >> np.uint64(bit)) & np.uint64(1)) << np.uint64(3 * bit + 1)
        codes |= ((iz >> np.uint64(bit)) & np.uint64(1)) << np.uint64(3 * bit + 2)
    return codes


def make_key(level: int, code: int) -> bytes:
    return _KEY.pack(level, code)


def parse_key(key: bytes) -> tuple[int, int]:
    return _KEY.unpack(key)


def oc_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    return pack_u64(unpack_u64(a) + unpack_u64(b))


@dataclass
class OctreeResult:
    """Per-rank clustering outcome."""

    levels_run: int
    #: Dense octants of the deepest dense level, owned by this rank:
    #: ``(level, morton_code, count)``.
    clusters: list[tuple[int, int, int]]
    total_points: int


def _map_level(ctx, chunk: bytes, level: int,
               dense_parents: set[int] | None) -> None:
    """Emit (octant key, 1) for points whose parent octant is dense."""
    points = np.frombuffer(chunk, dtype="<f4").reshape(-1, 3)
    codes = morton_codes(points, level)
    if dense_parents is not None:
        keep = np.isin(codes >> np.uint64(3),
                       np.fromiter(dense_parents, dtype=np.uint64,
                                   count=len(dense_parents)))
        codes = codes[keep]
    pack = _KEY.pack
    for code in codes.tolist():
        ctx.emit(pack(level, code), _ONE)


def _advance(comm, counts: list[tuple[bytes, bytes]], threshold: int,
             clusters: list[tuple[int, int, int]],
             ) -> tuple[set[int] | None, bool]:
    """Share dense octants; returns (dense codes, finished flag)."""
    local_dense = [(parse_key(k)[0], parse_key(k)[1], unpack_u64(v))
                   for k, v in counts if unpack_u64(v) >= threshold]
    gathered = comm.allgather(local_dense)
    all_dense = [entry for part in gathered for entry in part]
    if not all_dense:
        return None, True
    clusters[:] = all_dense
    return {code for _, code, _ in all_dense}, False


def octree_mimir(env: RankEnv, path: str,
                 config: MimirConfig | None = None, *,
                 density: float = 0.01, max_level: int = 8,
                 hint: bool = False, compress: bool = False,
                 partial: bool = False) -> OctreeResult:
    """Run octree clustering through Mimir."""
    config = config or MimirConfig()
    if hint:
        config = config.with_layout(OC_HINT_LAYOUT)
    mimir = Mimir(env, config)
    comm = env.comm

    total_points = env.pfs.size(path) // POINT_RECORD_SIZE
    threshold = max(1, int(density * total_points))
    clusters: list[tuple[int, int, int]] = []
    dense: set[int] | None = None
    level = 0
    for level in range(1, max_level + 1):
        parents = dense

        def map_fn(ctx, chunk, _level=level, _parents=parents):
            _map_level(ctx, chunk, _level, _parents)

        kvs = mimir.map_binary_file(
            path, POINT_RECORD_SIZE, map_fn,
            combine_fn=oc_combine if compress else None)
        if partial:
            out = mimir.partial_reduce(kvs, oc_combine,
                                       out_layout=config.layout)
        else:
            def count_reduce(ctx, key, values):
                ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))

            out = mimir.reduce(kvs, count_reduce, out_layout=config.layout)
        pairs = list(out.records())
        out.free()
        dense, finished = _advance(comm, pairs, threshold, clusters)
        if finished:
            level -= 1
            break
    mine = [c for c in clusters
            if comm.size == 1 or
            (hash_owner(c[1], comm.size) == comm.rank)]
    return OctreeResult(level, mine, total_points)


def octree_mrmpi(env: RankEnv, path: str,
                 config: MRMPIConfig | None = None, *,
                 density: float = 0.01, max_level: int = 8,
                 compress: bool = False) -> OctreeResult:
    """Run octree clustering through the MR-MPI baseline."""
    comm = env.comm
    total_points = env.pfs.size(path) // POINT_RECORD_SIZE
    threshold = max(1, int(density * total_points))
    clusters: list[tuple[int, int, int]] = []
    dense: set[int] | None = None
    level = 0
    mr = MRMPI(env, config)
    for level in range(1, max_level + 1):
        parents = dense

        def map_fn(ctx, chunk, _level=level, _parents=parents):
            _map_level(ctx, chunk, _level, _parents)

        mr.map_binary_file(path, POINT_RECORD_SIZE, map_fn)
        if compress:
            mr.compress(oc_combine)
        mr.aggregate()
        mr.convert()
        mr.reduce(lambda ctx, k, vs: ctx.emit(
            k, pack_u64(sum(unpack_u64(v) for v in vs))))
        pairs = mr.collect()
        mr.free()
        dense, finished = _advance(comm, pairs, threshold, clusters)
        if finished:
            level -= 1
            break
    mine = [c for c in clusters
            if comm.size == 1 or
            (hash_owner(c[1], comm.size) == comm.rank)]
    return OctreeResult(level, mine, total_points)


def hash_owner(code: int, nprocs: int) -> int:
    """Deterministic owner of an octant code (for de-duplicated output)."""
    return code % nprocs
