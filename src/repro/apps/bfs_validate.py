"""Graph500-style BFS output validation.

The Graph500 specification validates a BFS run with five structural
checks rather than comparing against a reference traversal.  This
module implements them over the reproduction's edge lists and parent
maps, so any BFS result (either framework, any optimization set) can
be certified independently of networkx:

1. the parent map forms a tree rooted at the root (no cycles,
   ``parent[root] == root``);
2. every tree edge exists in the input graph;
3. tree levels of parent and child differ by exactly one;
4. every graph edge connects vertices whose levels differ by at most
   one (both endpoints visited or both unvisited);
5. the tree spans exactly the root's connected component.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ValidationReport:
    """Outcome of the five Graph500 checks."""

    violations: list[str] = field(default_factory=list)
    levels: dict[int, int] = field(default_factory=dict)

    @property
    def valid(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)


def _component_of(edges: np.ndarray, root: int) -> set[int]:
    """Reference reachability (union-find over the undirected edges)."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges.tolist():
        if u == v:
            continue
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    root_rep = find(root)
    return {x for x in parent if find(x) == root_rep}


def validate_bfs(edges: np.ndarray, root: int,
                 parents: dict[int, int]) -> ValidationReport:
    """Run the five Graph500 checks; returns a report of violations."""
    report = ValidationReport()

    # Check 1: tree structure rooted at root.
    if parents.get(root) != root:
        report.add(f"root {root} does not map to itself")
        return report
    levels: dict[int, int] = {root: 0}
    for vertex in parents:
        chain = []
        v = vertex
        while v not in levels:
            chain.append(v)
            p = parents.get(v)
            if p is None:
                report.add(f"vertex {v} reached through unvisited parent")
                return report
            if p in chain or len(chain) > len(parents):
                report.add(f"cycle in parent chain at vertex {v}")
                return report
            v = p
        base = levels[v]
        for depth, u in enumerate(reversed(chain), start=1):
            levels[u] = base + depth
    report.levels = levels

    # Check 2: every tree edge is a graph edge.
    edge_set = set()
    for u, v in edges.tolist():
        if u != v:
            edge_set.add((u, v))
            edge_set.add((v, u))
    for vertex, parent in parents.items():
        if vertex != root and (vertex, parent) not in edge_set:
            report.add(f"tree edge ({vertex}, {parent}) not in the graph")

    # Check 3: tree edges span exactly one level.
    for vertex, parent in parents.items():
        if vertex != root and levels[vertex] != levels[parent] + 1:
            report.add(
                f"tree edge ({parent}->{vertex}) spans levels "
                f"{levels[parent]}->{levels[vertex]}")

    # Check 4: graph edges span at most one level.
    for u, v in edges.tolist():
        if u == v:
            continue
        lu, lv = levels.get(u), levels.get(v)
        if (lu is None) != (lv is None):
            report.add(f"edge ({u}, {v}) crosses the visited frontier")
        elif lu is not None and abs(lu - lv) > 1:
            report.add(f"edge ({u}, {v}) spans levels {lu} and {lv}")

    # Check 5: the tree covers exactly the root's component.
    component = _component_of(edges, root)
    missing = component - set(parents)
    extra = set(parents) - component
    if missing:
        report.add(f"{len(missing)} reachable vertices not in the tree")
    if extra:
        report.add(f"{len(extra)} tree vertices outside the component")
    return report
