"""Coupling a simulation to Mimir analyses, in-situ or post-hoc.

In-situ: each timestep's particle positions flow straight into
``Mimir.map_items`` from memory - no file system involvement; this is
the input source the paper's Section III-A explicitly supports.

Post-hoc: each timestep is first written to the parallel file system
(as the producing application would normally do) and later analysed by
reading it back - the conventional workflow in-situ processing avoids.
The difference in virtual time is pure PFS traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.octree import OC_HINT_LAYOUT, make_key, morton_codes, oc_combine
from repro.cluster import RankEnv
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets.points import POINT_RECORD_SIZE
from repro.insitu.simulation import ParticleSimulation


@dataclass
class StepSummary:
    """Density analysis of one timestep."""

    timestep: int
    #: Octants (at the analysis level) that this rank owns and that
    #: hold at least the density threshold of all particles.
    dense_octants: dict[int, int] = field(default_factory=dict)


class InSituAnalytics:
    """Per-timestep density analysis over a running simulation."""

    def __init__(self, env: RankEnv, sim: ParticleSimulation, *,
                 config: MimirConfig | None = None, level: int = 2,
                 density: float = 0.01, use_plan: bool = False,
                 cache=None, trace=None):
        if not 1 <= level <= 21:
            raise ValueError(f"level must be in 1..21, got {level}")
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.env = env
        self.sim = sim
        self.config = (config or MimirConfig()).with_layout(OC_HINT_LAYOUT)
        self.mimir = Mimir(env, self.config)
        self.level = level
        self.density = density
        self.threshold = max(1, int(density * sim.total_particles))
        #: With ``use_plan`` each timestep's analysis is one
        #: micro-batch on a live stream ingested through
        #: ``Plan.source_stream`` - identical numbers, but the
        #: timestep stages carry stream lineage keys (name + batch
        #: index), schedulable next to other jobs and cacheable like
        #: any :mod:`repro.stream` client.
        self.use_plan = use_plan
        self._plan_cache = cache
        self._plan_trace = trace
        self._stream = None
        self._plan = None
        self._runner = None

    # ------------------------------------------------------------ in-situ

    def analyse_step(self) -> StepSummary:
        """Advance the simulation one step and analyse it in place."""
        positions = self.sim.step()
        return self._analyse(positions, self.sim.timestep)

    def _analyse(self, positions: np.ndarray, timestep: int) -> StepSummary:
        codes = morton_codes(positions, self.level) if len(positions) \
            else np.zeros(0, dtype=np.uint64)
        one = pack_u64(1)

        def map_fn(ctx, _item, _codes=codes):
            for code in _codes.tolist():
                ctx.emit(make_key(self.level, code), one)

        if self.use_plan:
            arrivals = self._analyse_plan(map_fn, timestep)
        else:
            kvs = self.mimir.map_items([None], map_fn)
            counts = self.mimir.partial_reduce(kvs, oc_combine,
                                               out_layout=self.config.layout)
            arrivals = counts.consume()
        dense = {}
        for key, value in arrivals:
            count = unpack_u64(value)
            if count >= self.threshold:
                code = int.from_bytes(key[1:9], "little")
                dense[code] = count
        return StepSummary(timestep, dense)

    def _analyse_plan(self, map_fn, timestep: int):
        """One timestep as a micro-batch on a live stream.

        The simulation is a *live* producer: each analysed step pushes
        one micro-batch onto a persistent :class:`~repro.stream.
        source.StreamSource`, and the analysis stages derive from
        ``Plan.source_stream`` - so their identities follow the stream
        name + batch index discipline every other stream client uses
        (same numbers as the direct path either way).
        """
        from repro.sched.executor import PlanRunner
        from repro.sched.plan import Plan
        from repro.stream.source import StreamSource

        if self._runner is None:
            self._stream = StreamSource("insitu")
            self._plan = Plan("insitu", self.config)
            self._runner = PlanRunner(self.env, self._plan,
                                      cache=self._plan_cache,
                                      trace=self._plan_trace, job="insitu")
        batch = self._stream.push([None], arrival=float(timestep))
        counts = (self._plan
                  .source_stream(self._stream, batch.index,
                                 name=f"particles-t{timestep}")
                  .map(map_fn, name="bin")
                  .partial_reduce(oc_combine, out_layout=self.config.layout,
                                  name="density"))
        return self._runner.stream(counts)

    # ----------------------------------------------------------- post-hoc

    def dump_step(self, prefix: str = "steps") -> str:
        """Post-hoc path, write side: advance and persist the snapshot."""
        self.sim.step()
        path = f"{prefix}/t{self.sim.timestep:05d}.{self.env.comm.rank}"
        self.env.pfs.write(self.env.comm, path, self.sim.snapshot_bytes())
        return path

    def analyse_dump(self, timestep: int,
                     prefix: str = "steps") -> StepSummary:
        """Post-hoc path, read side: load one snapshot and analyse it."""
        path = f"{prefix}/t{timestep:05d}.{self.env.comm.rank}"
        data = self.env.pfs.read(self.env.comm, path)
        positions = np.frombuffer(data, dtype="<f4").reshape(
            -1, POINT_RECORD_SIZE // 4)
        return self._analyse(positions, timestep)
