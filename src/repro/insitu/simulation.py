"""A miniature time-stepping particle simulation.

Stands in for the scientific application whose data an in-situ
analysis consumes: each rank owns a block of particles in the unit
cube that drift with reflected Gaussian steps.  Deterministic per
(seed, rank), and the compute cost of stepping is charged to the
rank's virtual clock like any other work.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import RankEnv
from repro.io.splits import split_range


class ParticleSimulation:
    """Rank-local slice of a distributed particle simulation."""

    def __init__(self, env: RankEnv, total_particles: int, *,
                 sigma: float = 0.02, seed: int = 0):
        if total_particles < 0:
            raise ValueError(
                f"total_particles must be non-negative, got {total_particles}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.env = env
        comm = env.comm
        first, last = split_range(total_particles, comm.rank, comm.size)
        self.nlocal = last - first
        self.total_particles = total_particles
        self.sigma = sigma
        self._rng = np.random.default_rng((seed, comm.rank))
        self.positions = self._rng.random((self.nlocal, 3)).astype("<f4")
        self.timestep = 0
        # Particle state is real memory the analysis shares the node
        # with; charge it for the simulation's lifetime.
        self._state_bytes = self.positions.nbytes
        env.tracker.allocate(self._state_bytes, "simulation_state")

    def step(self) -> np.ndarray:
        """Advance one timestep; returns the new positions (view)."""
        drift = self._rng.normal(0.0, self.sigma,
                                 size=self.positions.shape).astype("<f4")
        self.positions += drift
        # Reflecting boundaries keep the domain the unit cube.
        np.abs(self.positions, out=self.positions)
        over = self.positions > 1.0
        self.positions[over] = 2.0 - self.positions[over]
        np.clip(self.positions, 0.0, np.nextafter(np.float32(1.0),
                                                  np.float32(0.0)),
                out=self.positions)
        self.timestep += 1
        # Stepping costs compute proportional to the particle data.
        self.env.charge_compute(self.positions.nbytes)
        return self.positions

    def snapshot_bytes(self) -> bytes:
        """Current positions serialised (for the post-hoc PFS path)."""
        return np.ascontiguousarray(self.positions).tobytes()

    def finalize(self) -> None:
        """Release the simulation state accounting."""
        if self._state_bytes:
            self.env.tracker.free(self._state_bytes, "simulation_state")
            self._state_bytes = 0
