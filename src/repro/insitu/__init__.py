"""In-situ analytics: MapReduce over live simulation data.

The paper lists three input sources for Mimir's map phase: PFS files,
previous MapReduce output, and "sources other than MapReduce jobs
(e.g., in situ analytics workflows)" - and positions Mimir against
Smart (SC'15) as a framework that keeps *full* MapReduce semantics
while still serving in-situ analysis.  This package exercises that
third source:

- :class:`ParticleSimulation` - a small time-stepping scientific
  simulation (random-walk particles in the unit cube) standing in for
  the producing application;
- :class:`InSituAnalytics` - couples the simulation to Mimir
  analyses per timestep *without* a PFS round trip, and offers the
  post-hoc alternative (write each step to the PFS, analyse later) so
  the I/O saving is measurable.
"""

from repro.insitu.pipeline import InSituAnalytics, StepSummary
from repro.insitu.simulation import ParticleSimulation

__all__ = ["InSituAnalytics", "ParticleSimulation", "StepSummary"]
