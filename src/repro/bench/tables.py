"""Render benchmark series as paper-style text tables.

The paper's figures plot peak memory (bars) and execution time (lines)
against dataset size, or execution time against node count.  These
renderers print the same rows/series so a bench run's stdout can be
compared against the figure directly.
"""

from __future__ import annotations

from repro.bench.records import Series


def _grid(title: str, header: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-" * len(line(header))
    out = [f"\n== {title} ==", line(header), sep]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def render_memory_time_table(series: Series) -> str:
    """Dataset size x config: ``peak-memory / time`` cells (Figs 8-13)."""
    header = ["size"] + [f"{c}" for c in series.configs]
    rows = []
    for label in series.labels:
        row = [label]
        for config in series.configs:
            record = series.get(config, label)
            if record is None:
                row.append("-")
            elif record.oom:
                row.append("OOM")
            else:
                row.append(f"{record.memory_cell()} / {record.time_cell()}")
        rows.append(row)
    footer_rows = [["max in-mem"] + [
        series.max_in_memory_label(c) or "-" for c in series.configs]]
    return _grid(series.title, header, rows + footer_rows)


def render_scaling_table(series: Series) -> str:
    """Node count x config: execution-time cells (Figs 10 and 14)."""
    header = ["nodes"] + [f"{c}" for c in series.configs]
    rows = []
    for label in series.labels:
        row = [label]
        for config in series.configs:
            record = series.get(config, label)
            row.append("-" if record is None else record.time_cell())
        rows.append(row)
    return _grid(series.title, header, rows)


def render_markdown(series: Series, *, time_only: bool = False) -> str:
    """GitHub-flavoured Markdown rendering of a series (for reports)."""
    header = ["size"] + list(series.configs)
    lines = [f"**{series.title}**", "",
             "| " + " | ".join(header) + " |",
             "|" + "---|" * len(header)]
    for label in series.labels:
        cells = [label]
        for config in series.configs:
            record = series.get(config, label)
            if record is None:
                cells.append("—")
            elif record.oom:
                cells.append("OOM")
            elif time_only:
                cells.append(record.time_cell())
            else:
                cells.append(f"{record.memory_cell()} / {record.time_cell()}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_time_table(series: Series) -> str:
    """Dataset size x config: execution-time-only cells (Fig 1)."""
    header = ["size"] + list(series.configs)
    rows = []
    for label in series.labels:
        row = [label]
        for config in series.configs:
            record = series.get(config, label)
            row.append("-" if record is None else record.time_cell())
        rows.append(row)
    return _grid(series.title, header, rows)
