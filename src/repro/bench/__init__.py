"""Benchmark harness: one runnable spec per paper data point.

The harness turns an :class:`ExperimentSpec` (platform, framework,
app, dataset size, optimization set) into a :class:`RunRecord` (peak
node memory, virtual execution time, OOM / spill outcome), and renders
the records as the same series the paper's figures plot.  Every bench
module under ``benchmarks/`` is a thin sweep built on this package.
"""

from repro.bench.records import RunRecord, Series
from repro.bench.runner import ExperimentSpec, run_spec
from repro.bench.scale import BenchScale
from repro.bench.tables import render_memory_time_table, render_scaling_table

__all__ = [
    "BenchScale",
    "ExperimentSpec",
    "RunRecord",
    "Series",
    "render_memory_time_table",
    "render_scaling_table",
    "run_spec",
]
