"""Execute one experiment spec on a fresh simulated cluster.

A spec names the platform (already bench-scaled), the process count,
the app and dataset size, the framework, and the optimization set.
``run_spec`` stages the dataset on a fresh PFS, runs the job with OOM
capture, and returns a :class:`~repro.bench.records.RunRecord` - the
exact information one point of a paper figure carries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.apps.bfs import bfs_mimir, bfs_mrmpi
from repro.apps.octree import octree_mimir, octree_mrmpi
from repro.apps.wordcount import wordcount_mimir, wordcount_mrmpi
from repro.bench.records import RunRecord
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import (
    edges_to_bytes,
    kronecker_edges,
    normal_points,
    points_to_bytes,
    uniform_text,
    zipf_text,
)
from repro.mpi.platforms import Platform
from repro.mrmpi import MRMPIConfig

APPS = ("wc_uniform", "wc_wiki", "oc", "bfs")
FRAMEWORKS = ("mimir", "mrmpi")

#: Dataset cache: staging is deterministic, so identical inputs are
#: generated once per process.
_DATASET_CACHE: dict[tuple, bytes] = {}


@dataclass(frozen=True)
class ExperimentSpec:
    """One benchmark data point."""

    label: str                    # x-axis label (paper units)
    config_name: str              # series label, e.g. "Mimir (hint;pr)"
    platform: Platform            # bench-scaled platform
    nprocs: int
    app: str                      # one of APPS
    framework: str                # one of FRAMEWORKS
    size: int                     # bytes (wc) / points (oc) / vertices (bfs)
    #: MR-MPI page size; Mimir always uses the platform default page
    #: (the paper pins both to 64 MB for fairness).
    mrmpi_page: int | None = None
    hint: bool = False
    compress: bool = False
    partial: bool = False
    out_of_core: bool = False  # Mimir's post-publication ooc mode
    memory_limit: int | str | None = "auto"
    #: Simulated node count (weak-scaling runs use one rank per node).
    nodes: int = 1
    seed: int = 0
    edgefactor: int = 32
    density: float = 0.01
    max_level: int = 8

    def __post_init__(self):
        if self.app not in APPS:
            raise ValueError(f"unknown app {self.app!r}")
        if self.framework not in FRAMEWORKS:
            raise ValueError(f"unknown framework {self.framework!r}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")


# --------------------------------------------------------------- staging

def stage_dataset(spec: ExperimentSpec) -> tuple[str, bytes]:
    """Generate (cached) the input blob for a spec; returns (path, data)."""
    if spec.app == "wc_uniform":
        key = ("wc_uniform", spec.size, spec.seed)
        if key not in _DATASET_CACHE:
            # A wide vocabulary keeps the per-rank shuffle volume close
            # to its mean (small key-hash variance); 9-letter words give
            # the ~2.5x text-to-KV expansion that puts MR-MPI's
            # in-memory crossovers where the paper's are (64M pages hold
            # 512M of input, 512M pages hold 4G).
            vocab = min(65536, max(64, spec.size // 16))
            _DATASET_CACHE[key] = uniform_text(spec.size, vocab_size=vocab,
                                               word_len=9, seed=spec.seed)
        return "input/wc_uniform.txt", _DATASET_CACHE[key]
    if spec.app == "wc_wiki":
        key = ("wc_wiki", spec.size, spec.seed)
        if key not in _DATASET_CACHE:
            vocab = min(65536, max(64, spec.size // 64))
            _DATASET_CACHE[key] = zipf_text(spec.size, vocab_size=vocab,
                                            seed=spec.seed)
        return "input/wc_wiki.txt", _DATASET_CACHE[key]
    if spec.app == "oc":
        key = ("oc", spec.size, spec.seed)
        if key not in _DATASET_CACHE:
            _DATASET_CACHE[key] = points_to_bytes(
                normal_points(spec.size, seed=spec.seed))
        return "input/points.bin", _DATASET_CACHE[key]
    if spec.app == "bfs":
        scale = max(1, round(math.log2(spec.size)))
        key = ("bfs", scale, spec.edgefactor, spec.seed)
        if key not in _DATASET_CACHE:
            _DATASET_CACHE[key] = edges_to_bytes(
                kronecker_edges(scale, spec.edgefactor, seed=spec.seed))
        return "input/edges.bin", _DATASET_CACHE[key]
    raise AssertionError(spec.app)


# --------------------------------------------------------------- running

def _mimir_config(spec: ExperimentSpec) -> MimirConfig:
    page = spec.platform.default_page_size
    return MimirConfig(page_size=page, comm_buffer_size=page,
                       input_chunk_size=page,
                       out_of_core=spec.out_of_core)


def _mrmpi_config(spec: ExperimentSpec) -> MRMPIConfig:
    page = spec.mrmpi_page or spec.platform.default_page_size
    return MRMPIConfig(page_size=page,
                       input_chunk_size=spec.platform.default_page_size)


def _job(env, spec: ExperimentSpec, path: str):
    if spec.app in ("wc_uniform", "wc_wiki"):
        if spec.framework == "mimir":
            return wordcount_mimir(env, path, _mimir_config(spec),
                                   hint=spec.hint, compress=spec.compress,
                                   partial=spec.partial)
        return wordcount_mrmpi(env, path, _mrmpi_config(spec),
                               compress=spec.compress)
    if spec.app == "oc":
        if spec.framework == "mimir":
            return octree_mimir(env, path, _mimir_config(spec),
                                density=spec.density,
                                max_level=spec.max_level, hint=spec.hint,
                                compress=spec.compress, partial=spec.partial)
        return octree_mrmpi(env, path, _mrmpi_config(spec),
                            density=spec.density, max_level=spec.max_level,
                            compress=spec.compress)
    if spec.app == "bfs":
        if spec.framework == "mimir":
            return bfs_mimir(env, path, _mimir_config(spec),
                             hint=spec.hint, compress=spec.compress)
        return bfs_mrmpi(env, path, _mrmpi_config(spec),
                         compress=spec.compress)
    raise AssertionError(spec.app)


def run_spec(spec: ExperimentSpec) -> RunRecord:
    """Stage, run, and summarise one data point."""
    path, data = stage_dataset(spec)
    cluster = Cluster(spec.platform, nprocs=spec.nprocs, nodes=spec.nodes,
                      memory_limit=spec.memory_limit)
    cluster.pfs.store(path, data)
    result = cluster.run(_job, spec, path, allow_oom=True)
    return RunRecord(
        label=spec.label,
        config=spec.config_name,
        peak_bytes=result.node_peak_bytes,
        elapsed=result.elapsed,
        oom=result.ran_out_of_memory,
        spilled=result.spilled_bytes > 0,
        spilled_bytes=result.spilled_bytes,
        extra={"nprocs": spec.nprocs, "app": spec.app,
               "framework": spec.framework,
               "input_bytes": len(data)},
    )
