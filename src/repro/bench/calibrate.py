"""Microbenchmarks that measure the simulator's *effective* rates.

The platform constants (compute rate, bandwidths, penalties) feed many
code paths; what the figures actually experience are composite,
end-to-end throughputs - a shuffle includes rounds, latency and copy
charges, a spill includes contention and the write penalty.  These
microbenchmarks measure those effective rates on a live cluster, which
(a) documents the operating point behind EXPERIMENTS.md and (b) pins
the relationships the figures rely on (spill << shuffle << compute) in
tests, so a cost-model regression is caught directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets import uniform_text
from repro.io.spill import SpillWriter
from repro.mpi.platforms import Platform


@dataclass(frozen=True)
class CalibrationReport:
    """Effective end-to-end rates of one platform (bytes per virtual s)."""

    platform: str
    shuffle_throughput: float      # KV bytes through map+aggregate
    spill_write_throughput: float  # page stream to the PFS, per rank
    spill_read_throughput: float   # and back
    wordcount_throughput: float    # input bytes through a full WC job

    def render(self) -> str:
        def fmt(value: float) -> str:
            return f"{value:12.3e} B/s"

        return "\n".join([
            f"calibration ({self.platform}):",
            f"  shuffle     {fmt(self.shuffle_throughput)}",
            f"  spill write {fmt(self.spill_write_throughput)}",
            f"  spill read  {fmt(self.spill_read_throughput)}",
            f"  wordcount   {fmt(self.wordcount_throughput)}",
        ])


def _measure_shuffle(platform: Platform, nbytes_per_rank: int) -> float:
    cluster = Cluster(platform, memory_limit=None)
    config = MimirConfig(page_size=platform.default_page_size,
                         comm_buffer_size=platform.default_page_size)
    record = 24  # 8B key + 8B value + header
    nrecords = max(1, nbytes_per_rank // record)

    def job(env):
        mimir = Mimir(env, config)
        rank_key = pack_u64(env.comm.rank)

        def map_fn(ctx, i):
            ctx.emit(pack_u64(i * env.comm.size + env.comm.rank), rank_key)

        kvs = mimir.map_items(range(nrecords), map_fn)
        moved = mimir.last_map_stats["kv_bytes"]
        kvs.free()
        return moved

    result = cluster.run(job)
    total = sum(result.returns)
    return total / result.elapsed if result.elapsed else float("inf")


def _measure_spill(platform: Platform, nbytes: int) -> tuple[float, float]:
    cluster = Cluster(platform, memory_limit=None)
    page = platform.default_page_size

    def job(env):
        writer = SpillWriter(env.pfs, env.comm, "calib")
        t0 = env.comm.clock.time
        written = 0
        while written < nbytes:
            chunk = min(page, nbytes - written)
            writer.write_chunk(b"x" * chunk)
            written += chunk
        t_write = env.comm.clock.time - t0
        t0 = env.comm.clock.time
        for _ in writer.reader():
            pass
        t_read = env.comm.clock.time - t0
        writer.discard()
        return written / t_write, written / t_read

    result = cluster.run(job)
    writes = [w for w, _ in result.returns]
    reads = [r for _, r in result.returns]
    return min(writes), min(reads)


def _measure_wordcount(platform: Platform, nbytes: int) -> float:
    cluster = Cluster(platform, memory_limit=None)
    cluster.pfs.store("calib.txt", uniform_text(nbytes, vocab_size=1024,
                                                word_len=9, seed=0))
    config = MimirConfig(page_size=platform.default_page_size,
                         comm_buffer_size=platform.default_page_size,
                         input_chunk_size=platform.default_page_size)

    def job(env):
        mimir = Mimir(env, config)
        kvs = mimir.map_text_file(
            "calib.txt", lambda ctx, chunk: [
                ctx.emit(w, pack_u64(1)) for w in chunk.split()])
        out = mimir.partial_reduce(
            kvs, lambda k, a, b: pack_u64(unpack_u64(a) + unpack_u64(b)))
        out.free()

    result = cluster.run(job)
    return nbytes / result.elapsed if result.elapsed else float("inf")


def calibrate(platform: Platform, *,
              sample_bytes: int | None = None) -> CalibrationReport:
    """Measure the effective rates of ``platform``."""
    sample = sample_bytes or 8 * platform.default_page_size
    spill_write, spill_read = _measure_spill(platform, sample)
    return CalibrationReport(
        platform=platform.name,
        shuffle_throughput=_measure_shuffle(platform, sample),
        spill_write_throughput=spill_write,
        spill_read_throughput=spill_read,
        wordcount_throughput=_measure_wordcount(platform, 4 * sample),
    )
