"""Benchmark outcome records and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.memory.limits import format_size


@dataclass
class RunRecord:
    """Outcome of one (config, dataset-size) data point."""

    label: str                 # x-axis label, e.g. "4G" or "2^26"
    config: str                # series name, e.g. "Mimir (hint;pr)"
    peak_bytes: int = 0        # node peak (sum of per-rank peaks)
    elapsed: float = 0.0       # virtual seconds
    oom: bool = False          # ran out of memory (missing data point)
    spilled: bool = False      # touched the I/O subsystem
    spilled_bytes: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def in_memory(self) -> bool:
        """Whether the paper would count this run as "in memory"."""
        return not self.oom and not self.spilled

    def memory_cell(self) -> str:
        if self.oom:
            return "OOM"
        return format_size(self.peak_bytes)

    def time_cell(self) -> str:
        if self.oom:
            return "OOM"
        mark = "*" if self.spilled else ""
        return f"{self.elapsed:.2f}s{mark}"


@dataclass
class Series:
    """One figure's worth of records, grouped config x label."""

    title: str
    records: list[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    @property
    def configs(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.config, None)
        return list(seen)

    @property
    def labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.label, None)
        return list(seen)

    def get(self, config: str, label: str) -> RunRecord | None:
        for r in self.records:
            if r.config == config and r.label == label:
                return r
        return None

    def max_in_memory_label(self, config: str) -> str | None:
        """Largest dataset this config processed fully in memory."""
        best = None
        for label in self.labels:
            record = self.get(config, label)
            if record is not None and record.in_memory:
                best = label
        return best
