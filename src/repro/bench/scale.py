"""Benchmark-time rescaling on top of the repository-wide 1/1024 scale.

Paper experiments sweep up to 64 GB of text; even after the global
1/1024 rescale that is tens of megabytes of pure-Python record
processing per data point.  ``BenchScale`` applies a further power-of-
two shrink (default 1/16, env ``REPRO_BENCH_SHIFT``) to *everything* -
dataset sizes, page sizes, node memory, bandwidths - so all paper
ratios survive while full figure sweeps run in seconds to minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.memory.limits import parse_size
from repro.mpi.platforms import SCALE_SHIFT, Platform

#: Default extra shrink exponent (2**3 = 8x) on top of the global 1024x.
#: Smaller shifts increase fidelity (more records -> tighter hash-skew
#: concentration) at the cost of longer bench runs.
DEFAULT_EXTRA_SHIFT = 3


def extra_shift_from_env() -> int:
    """Read ``REPRO_BENCH_SHIFT`` (extra shrink exponent) from the env."""
    raw = os.environ.get("REPRO_BENCH_SHIFT", "")
    if not raw:
        return DEFAULT_EXTRA_SHIFT
    value = int(raw)
    if value < 0:
        raise ValueError(f"REPRO_BENCH_SHIFT must be >= 0, got {value}")
    return value


@dataclass(frozen=True)
class BenchScale:
    """Converts paper-quoted quantities into benchmark-run quantities."""

    extra_shift: int = field(default_factory=extra_shift_from_env)

    @property
    def total_shift(self) -> int:
        """Paper bytes are divided by ``2**total_shift``."""
        return SCALE_SHIFT + self.extra_shift

    def platform(self, platform: Platform) -> Platform:
        """The benchmark variant of an already-globally-scaled platform."""
        return platform.rescaled(self.extra_shift)

    def size(self, paper_size: int | str) -> int:
        """Scale a paper-quoted byte size (e.g. ``"4G"``) for a bench run."""
        return max(1, parse_size(paper_size) >> self.total_shift)

    def count(self, paper_count: int) -> int:
        """Scale a paper-quoted cardinality (points, vertices).

        Counts shrink by the same factor as bytes so that per-rank
        record footprints keep their paper ratios.
        """
        if paper_count < 0:
            raise ValueError(f"count must be non-negative, got {paper_count}")
        return max(1, paper_count >> self.total_shift)

    def describe(self) -> str:
        return (f"1/{1 << self.total_shift} of paper scale "
                f"(global 1/{1 << SCALE_SHIFT} x bench 1/{1 << self.extra_shift})")
