"""Post-mortem analysis tools.

Load imbalance is the paper's recurring villain (it drives every
weak-scaling failure in Figures 10 and 14) and peak memory its central
metric; these helpers turn per-rank measurements and allocation
timelines into the numbers and breakdowns the paper discusses.
"""

from repro.tools.balance import ImbalanceReport
from repro.tools.timeline import (
    composition_at_peak,
    render_job_lanes,
    render_timeline,
)
from repro.tools.trace import SCHED_EVENT_KINDS, Event, Trace

__all__ = [
    "Event",
    "ImbalanceReport",
    "SCHED_EVENT_KINDS",
    "Trace",
    "composition_at_peak",
    "render_job_lanes",
    "render_timeline",
]
