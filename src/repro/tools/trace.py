"""Structured event tracing for post-mortem debugging.

A :class:`Trace` collects typed events (phase boundaries, exchange
rounds, spills, checkpoints, custom markers) with virtual timestamps
and rank ids, and renders them as a merged timeline or exports JSON.
Cheap enough to leave attached in tests; off by default everywhere.

On top of flat events, :meth:`Trace.span` opens a nested begin/end
*span* (kind ``"span"``, ``data["ph"]`` of ``"B"``/``"E"``) stamped
with the rank's virtual clock; :meth:`Trace.to_chrome_trace` exports
spans, phase boundaries, and instant events as Chrome/Perfetto
``trace_event`` JSON, so any traced run opens in ``ui.perfetto.dev``
(see :mod:`repro.obs.chrome`).
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator


#: Event kinds emitted by the multi-job scheduler (:mod:`repro.sched`).
#: ``submit``/``queue``/``admit`` track admission control, ``evict``
#: the intermediate cache, ``stage-done`` dataflow progress, and
#: ``oom`` a job that blew its footprint estimate.  The timeline
#: renderer groups these into one lane per job id.
SCHED_EVENT_KINDS = ("submit", "admit", "queue", "evict", "stage-done",
                     "oom")


@dataclass(frozen=True)
class Event:
    """One traced occurrence on one rank."""

    time: float
    rank: int
    kind: str                     # "phase", "exchange", "spill", ...
    label: str
    data: dict[str, Any] = field(default_factory=dict)


class Trace:
    """Thread-safe event sink shared by all ranks of a job."""

    def __init__(self):
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def emit(self, env, kind: str, label: str, **data: Any) -> None:
        """Record one event stamped with the rank's virtual clock."""
        event = Event(time=env.comm.clock.time, rank=env.comm.rank,
                      kind=kind, label=label, data=dict(data))
        with self._lock:
            self._events.append(event)

    def emit_abs(self, time: float, rank: int, kind: str, label: str,
                 **data: Any) -> None:
        """Record one event at an explicit virtual time.

        The scheduler lives *outside* any launch, so its events (and
        events from jobs whose clocks restart at zero every launch)
        are stamped with a cumulative time supplied by the caller.
        ``rank`` is -1 for global scheduler decisions.
        """
        event = Event(time=time, rank=rank, kind=kind, label=label,
                      data=dict(data))
        with self._lock:
            self._events.append(event)

    # -------------------------------------------------------------- spans

    def begin(self, env, name: str, **data: Any) -> None:
        """Open a span on this rank at the current virtual time."""
        self.emit(env, "span", name, ph="B", **data)

    def end(self, env, name: str, **data: Any) -> None:
        """Close the innermost open span named ``name`` on this rank."""
        self.emit(env, "span", name, ph="E", **data)

    @contextmanager
    def span(self, env, name: str, **data: Any) -> Iterator[None]:
        """Context manager wrapping a region in a begin/end span pair.

        Spans nest: opening a span inside another yields the parent/
        child hierarchy the Perfetto flame view renders.  The end event
        is emitted even when the body raises, so exported traces stay
        balanced.
        """
        self.begin(env, name, **data)
        try:
            yield
        finally:
            self.end(env, name)

    def begin_abs(self, time: float, rank: int, name: str,
                  **data: Any) -> None:
        """Open a span at an explicit virtual time (scheduler lanes)."""
        self.emit_abs(time, rank, "span", name, ph="B", **data)

    def end_abs(self, time: float, rank: int, name: str,
                **data: Any) -> None:
        self.emit_abs(time, rank, "span", name, ph="E", **data)

    # ------------------------------------------------------------ queries

    @property
    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def for_rank(self, rank: int) -> list[Event]:
        return [e for e in self.events if e.rank == rank]

    def merged(self) -> list[Event]:
        """All events in virtual-time order (rank breaks ties)."""
        return sorted(self.events, key=lambda e: (e.time, e.rank))

    # ------------------------------------------------------------ exports

    def to_json(self) -> str:
        return json.dumps([asdict(e) for e in self.merged()], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Rebuild a trace saved with :meth:`to_json` (``repro report
        --from-trace`` consumes this format)."""
        loaded = json.loads(text)
        if isinstance(loaded, dict):
            hint = (" (this looks like a Chrome/Perfetto export; "
                    "--from-trace wants Trace.to_json output)"
                    if "traceEvents" in loaded else "")
            raise ValueError(f"not a saved Trace: expected a JSON list "
                             f"of events{hint}")
        trace = cls()
        for entry in loaded:
            trace._events.append(Event(
                time=entry["time"], rank=entry["rank"],
                kind=entry["kind"], label=entry["label"],
                data=dict(entry.get("data", {}))))
        return trace

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome/Perfetto ``trace_event`` JSON object (see
        :func:`repro.obs.chrome.to_chrome_trace`)."""
        from repro.obs.chrome import to_chrome_trace

        return to_chrome_trace(self)

    def render(self, limit: int = 50) -> str:
        lines = [f"{'t(virt)':>10}  {'rank':>4}  {'kind':<10} label"]
        for event in self.merged()[:limit]:
            lines.append(f"{event.time:>10.5f}  {event.rank:>4}  "
                         f"{event.kind:<10} {event.label}")
        extra = len(self.events) - limit
        if extra > 0:
            lines.append(f"... {extra} more events")
        return "\n".join(lines)

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
