"""Structured event tracing for post-mortem debugging.

A :class:`Trace` collects typed events (phase boundaries, exchange
rounds, spills, checkpoints, custom markers) with virtual timestamps
and rank ids, and renders them as a merged timeline or exports JSON.
Cheap enough to leave attached in tests; off by default everywhere.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from typing import Any


#: Event kinds emitted by the multi-job scheduler (:mod:`repro.sched`).
#: ``submit``/``queue``/``admit`` track admission control, ``evict``
#: the intermediate cache, ``stage-done`` dataflow progress, and
#: ``oom`` a job that blew its footprint estimate.  The timeline
#: renderer groups these into one lane per job id.
SCHED_EVENT_KINDS = ("submit", "admit", "queue", "evict", "stage-done",
                     "oom")


@dataclass(frozen=True)
class Event:
    """One traced occurrence on one rank."""

    time: float
    rank: int
    kind: str                     # "phase", "exchange", "spill", ...
    label: str
    data: dict[str, Any] = field(default_factory=dict)


class Trace:
    """Thread-safe event sink shared by all ranks of a job."""

    def __init__(self):
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def emit(self, env, kind: str, label: str, **data: Any) -> None:
        """Record one event stamped with the rank's virtual clock."""
        event = Event(time=env.comm.clock.time, rank=env.comm.rank,
                      kind=kind, label=label, data=dict(data))
        with self._lock:
            self._events.append(event)

    def emit_abs(self, time: float, rank: int, kind: str, label: str,
                 **data: Any) -> None:
        """Record one event at an explicit virtual time.

        The scheduler lives *outside* any launch, so its events (and
        events from jobs whose clocks restart at zero every launch)
        are stamped with a cumulative time supplied by the caller.
        ``rank`` is -1 for global scheduler decisions.
        """
        event = Event(time=time, rank=rank, kind=kind, label=label,
                      data=dict(data))
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------ queries

    @property
    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def for_rank(self, rank: int) -> list[Event]:
        return [e for e in self.events if e.rank == rank]

    def merged(self) -> list[Event]:
        """All events in virtual-time order (rank breaks ties)."""
        return sorted(self.events, key=lambda e: (e.time, e.rank))

    # ------------------------------------------------------------ exports

    def to_json(self) -> str:
        return json.dumps([asdict(e) for e in self.merged()], indent=2)

    def render(self, limit: int = 50) -> str:
        lines = [f"{'t(virt)':>10}  {'rank':>4}  {'kind':<10} label"]
        for event in self.merged()[:limit]:
            lines.append(f"{event.time:>10.5f}  {event.rank:>4}  "
                         f"{event.kind:<10} {event.label}")
        extra = len(self.events) - limit
        if extra > 0:
            lines.append(f"... {extra} more events")
        return "\n".join(lines)

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
