"""Memory-timeline analysis and rendering.

Works on a :class:`~repro.memory.tracker.MemoryTracker` created with
``keep_timeline=True``: reconstructs what each tag held at the moment
of the global peak (the breakdown behind "the aggregate phase's seven
pages dominate") and renders the footprint as an ASCII profile.
"""

from __future__ import annotations

from repro.memory.tracker import MemoryTracker

_BLOCKS = " ▁▂▃▄▅▆▇█"


def composition_at_peak(tracker: MemoryTracker) -> dict[str, int]:
    """Per-tag bytes held at the allocation-time global peak.

    Requires the tracker to have been created with
    ``keep_timeline=True``; raises otherwise.
    """
    if not tracker.keep_timeline:
        raise ValueError("tracker was not created with keep_timeline=True")
    by_tag: dict[str, int] = {}
    best: dict[str, int] = {}
    best_level = -1
    for sample in tracker.timeline:
        level = by_tag.get(sample.tag, 0) + sample.delta
        if level:
            by_tag[sample.tag] = level
        else:
            by_tag.pop(sample.tag, None)
        if sample.current > best_level:
            best_level = sample.current
            best = dict(by_tag)
    return best


def render_timeline(tracker: MemoryTracker, width: int = 60) -> str:
    """ASCII profile of the footprint over allocation events."""
    if not tracker.keep_timeline:
        raise ValueError("tracker was not created with keep_timeline=True")
    samples = tracker.timeline
    if not samples:
        return "(no allocations)"
    levels = [s.current for s in samples]
    peak = max(levels) or 1
    # Downsample to the requested width, keeping each bucket's maximum
    # (peaks must survive the compression).
    buckets = []
    per = max(1, -(-len(levels) // width))  # ceil: at most `width` buckets
    for start in range(0, len(levels), per):
        buckets.append(max(levels[start : start + per]))
    bars = "".join(
        _BLOCKS[min(len(_BLOCKS) - 1,
                    round(level / peak * (len(_BLOCKS) - 1)))]
        for level in buckets)
    return f"{bars}  peak={peak}B over {len(levels)} events"
