"""Memory-timeline analysis and rendering.

Works on a :class:`~repro.memory.tracker.MemoryTracker` created with
``keep_timeline=True``: reconstructs what each tag held at the moment
of the global peak (the breakdown behind "the aggregate phase's seven
pages dominate") and renders the footprint as an ASCII profile.

:func:`render_timeline` also accepts a :class:`~repro.tools.trace.
Trace` carrying scheduler events, in which case it renders one lane
per job id showing when each job was submitted, queued, admitted, and
finished (see :func:`render_job_lanes`).
"""

from __future__ import annotations

from repro.memory.tracker import MemoryTracker

_BLOCKS = " ▁▂▃▄▅▆▇█"

#: Lane marker per scheduler event kind, in increasing precedence: a
#: later entry wins when two events share one timeline cell.
_LANE_MARKS = {"stage-done": "#", "evict": "e", "queue": "q",
               "submit": "S", "admit": "A", "oom": "X"}


def composition_at_peak(tracker: MemoryTracker) -> dict[str, int]:
    """Per-tag bytes held at the allocation-time global peak.

    Requires the tracker to have been created with
    ``keep_timeline=True``; raises otherwise.
    """
    if not tracker.keep_timeline:
        raise ValueError("tracker was not created with keep_timeline=True")
    by_tag: dict[str, int] = {}
    best: dict[str, int] = {}
    best_level = -1
    for sample in tracker.timeline:
        level = by_tag.get(sample.tag, 0) + sample.delta
        if level:
            by_tag[sample.tag] = level
        else:
            by_tag.pop(sample.tag, None)
        if sample.current > best_level:
            best_level = sample.current
            best = dict(by_tag)
    return best


def render_job_lanes(trace, width: int = 60) -> str:
    """One character row per job id over a shared virtual-time axis.

    Consumes the scheduler events of a :class:`~repro.tools.trace.
    Trace` (those whose ``data`` carries a ``job`` entry): ``S`` the
    job was submitted, ``q`` it had to wait in the queue, ``A`` it was
    admitted onto the cluster, ``#`` a stage finished, ``e`` one of
    its cached containers was evicted, ``X`` it ran out of memory.
    """
    from repro.tools.trace import SCHED_EVENT_KINDS

    events = [e for e in trace.merged()
              if e.kind in SCHED_EVENT_KINDS and "job" in e.data]
    if not events:
        return "(no scheduler events)"
    jobs: dict[str, list] = {}
    for event in events:
        jobs.setdefault(str(event.data["job"]), []).append(event)
    t0 = min(e.time for e in events)
    t1 = max(e.time for e in events)
    span = (t1 - t0) or 1.0
    label_width = max(len(name) for name in jobs)
    precedence = {mark: i for i, mark in enumerate(_LANE_MARKS.values())}
    lines = []
    for name, lane_events in jobs.items():
        cells = ["·"] * width
        for event in lane_events:
            col = min(width - 1, int((event.time - t0) / span * width))
            mark = _LANE_MARKS.get(event.kind, "?")
            if precedence.get(cells[col], -1) <= precedence.get(mark, 0):
                cells[col] = mark
        lines.append(f"{name:<{label_width}} |{''.join(cells)}|")
    lines.append(f"{'':<{label_width}}  t={t0:.3f}s .. {t1:.3f}s  "
                 "(S submit, q queued, A admit, # stage, e evict, X oom)")
    return "\n".join(lines)


def render_timeline(source, width: int = 60) -> str:
    """ASCII profile of a tracker's footprint - or, given a
    :class:`~repro.tools.trace.Trace`, per-job scheduler lanes."""
    if not isinstance(source, MemoryTracker):
        return render_job_lanes(source, width)
    tracker = source
    if not tracker.keep_timeline:
        raise ValueError("tracker was not created with keep_timeline=True")
    samples = tracker.timeline
    if not samples:
        return "(no allocations)"
    levels = [s.current for s in samples]
    peak = max(levels) or 1
    # Downsample to the requested width, keeping each bucket's maximum
    # (peaks must survive the compression).
    buckets = []
    per = max(1, -(-len(levels) // width))  # ceil: at most `width` buckets
    for start in range(0, len(levels), per):
        buckets.append(max(levels[start : start + per]))
    bars = "".join(
        _BLOCKS[min(len(_BLOCKS) - 1,
                    round(level / peak * (len(_BLOCKS) - 1)))]
        for level in buckets)
    return f"{bars}  peak={peak}B over {len(levels)} events"
