"""Load-imbalance metrics across ranks.

The paper attributes every scalability failure to imbalance: "load
imbalances cause some processes to run out of memory".  This module
quantifies that from any per-rank series (peak bytes, KV counts,
times): the max/mean imbalance factor - the standard HPC definition -
plus spread statistics and a compact report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ImbalanceReport:
    """Summary statistics of one per-rank measurement."""

    nranks: int
    mean: float
    minimum: float
    maximum: float
    stddev: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ImbalanceReport":
        if not values:
            raise ValueError("need at least one rank value")
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        return cls(nranks=n, mean=mean, minimum=min(values),
                   maximum=max(values), stddev=math.sqrt(var))

    @property
    def imbalance_factor(self) -> float:
        """max/mean: 1.0 is perfectly balanced."""
        if self.mean == 0:
            return 1.0
        return self.maximum / self.mean

    @property
    def cv(self) -> float:
        """Coefficient of variation (stddev/mean)."""
        if self.mean == 0:
            return 0.0
        return self.stddev / self.mean

    @property
    def headroom_lost(self) -> float:
        """Fraction of aggregate capacity idled by the straggler.

        With per-rank capacity sized to the maximum, ``1 - mean/max``
        of the total is wasted - this is why one hot rank OOMs a job
        whose *average* footprint fits comfortably.
        """
        if self.maximum == 0:
            return 0.0
        # The mean of near-identical values can round a hair past the
        # maximum at extreme magnitudes; a fraction stays in [0, 1].
        return max(0.0, 1.0 - self.mean / self.maximum)

    def render(self, label: str = "value") -> str:
        return (f"{label}: mean={self.mean:.1f} min={self.minimum:.1f} "
                f"max={self.maximum:.1f} imbalance={self.imbalance_factor:.2f}x "
                f"cv={self.cv:.2f}")
