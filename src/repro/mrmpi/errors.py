"""Errors raised by the MR-MPI baseline."""

from __future__ import annotations


class MRMPIError(RuntimeError):
    """Base class for MR-MPI failures."""


class PageOverflowError(MRMPIError):
    """Intermediate data exceeded one page under the ``ERROR`` mode.

    MR-MPI's third out-of-core setting: "report an error and terminate
    execution if the intermediate data is larger than a single page".
    """

    def __init__(self, what: str, page_size: int):
        self.what = what
        self.page_size = page_size
        super().__init__(
            f"{what} exceeded one page ({page_size} bytes) and the "
            f"out-of-core mode is ERROR")
