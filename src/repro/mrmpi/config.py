"""MR-MPI configuration: page size and out-of-core policy."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.memory.limits import parse_size


class OutOfCoreMode(enum.Enum):
    """MR-MPI's three out-of-core writing settings (paper Section II-B)."""

    #: (1) always write intermediate data to disk.
    ALWAYS = "always"
    #: (2) write intermediate data to disk only when it exceeds a page.
    WHEN_FULL = "when_full"
    #: (3) report an error and terminate if data exceeds a page.
    ERROR = "error"


@dataclass(frozen=True)
class MRMPIConfig:
    """Configuration for one :class:`~repro.mrmpi.mrmpi.MRMPI` object.

    ``page_size`` defaults to MR-MPI's 64 MB (scaled: 64 KB); users set
    it larger to use node memory "more effectively", which is exactly
    the trade-off the paper's Figures 8 and 9 sweep.
    """

    page_size: int = 64 * 1024
    mode: OutOfCoreMode = OutOfCoreMode.WHEN_FULL
    input_chunk_size: int = 64 * 1024

    def __post_init__(self):
        object.__setattr__(self, "page_size", parse_size(self.page_size))
        object.__setattr__(self, "input_chunk_size",
                           parse_size(self.input_chunk_size))
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")
        if self.input_chunk_size <= 0:
            raise ValueError("input_chunk_size must be positive")
        if not isinstance(self.mode, OutOfCoreMode):
            raise ValueError(f"mode must be an OutOfCoreMode, got {self.mode!r}")
