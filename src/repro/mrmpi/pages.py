"""MR-MPI's single-page-plus-spill data objects.

An MR-MPI data object (the KV or KMV of one phase) owns exactly one
in-memory page.  Records are appended to the page; when the page fills,
the object's out-of-core mode decides what happens: spill the page to
the PFS and keep going (``WHEN_FULL``), ditto but also flush at
finalize (``ALWAYS``), or abort (``ERROR``).  Readers stream the
spilled chunks back (paying PFS read costs) followed by the resident
page - so an object that spilled is dramatically slower to re-scan,
which is the mechanism behind the paper's Figure 1.
"""

from __future__ import annotations

from typing import Iterator

from repro.cluster import RankEnv
from repro.core.records import KVLayout
from repro.io.spill import SpillWriter
from repro.memory.pages import Page, PagePool
from repro.mrmpi.config import OutOfCoreMode
from repro.mrmpi.errors import PageOverflowError


class PagedObject:
    """One page of records with spill overflow (an MR-MPI "KV"/"KMV")."""

    def __init__(self, env: RankEnv, pool: PagePool, name: str,
                 mode: OutOfCoreMode, layout: KVLayout | None = None,
                 tag: str | None = None):
        self.env = env
        self.pool = pool
        self.name = name
        self.mode = mode
        self.layout = layout or KVLayout()
        self.page: Page | None = pool.acquire(tag or name)
        self.spill: SpillWriter | None = None
        self.nrecords = 0
        self.nbytes = 0

    # ------------------------------------------------------------- insert

    def append_record(self, record: bytes) -> None:
        """Append one encoded record, spilling the page when it fills."""
        page = self._require_page()
        if len(record) > page.size:
            # One record (e.g. the KMV of a very frequent key) larger
            # than a page: MR-MPI handles these out-of-core, chunking
            # the record straight to the spill file.
            if self.mode is OutOfCoreMode.ERROR:
                raise PageOverflowError(
                    f"{self.name} (single record of {len(record)} bytes)",
                    page.size)
            self._spill_page()
            if self.spill is None:
                self.spill = SpillWriter(self.env.pfs, self.env.comm,
                                         self.name)
            self.spill.write_chunk(record)
        elif not page.write(record):
            self._handle_full()
            page.write(record)
        self.nrecords += 1
        self.nbytes += len(record)

    def append_kv(self, key: bytes, value: bytes) -> None:
        self.append_record(self.layout.encode(key, value))

    def _handle_full(self) -> None:
        page = self._require_page()
        if self.mode is OutOfCoreMode.ERROR:
            raise PageOverflowError(self.name, page.size)
        self._spill_page()

    def _spill_page(self) -> None:
        page = self._require_page()
        if page.used == 0:
            return
        if self.spill is None:
            self.spill = SpillWriter(self.env.pfs, self.env.comm, self.name)
        self.spill.write_chunk(page.view)
        page.clear()

    def finalize(self) -> None:
        """End of the producing phase (``ALWAYS`` mode flushes here)."""
        if self.mode is OutOfCoreMode.ALWAYS:
            self._spill_page()

    # ------------------------------------------------------------ reading

    @property
    def spilled(self) -> bool:
        return self.spill is not None

    @property
    def spilled_bytes(self) -> int:
        return self.spill.total_bytes if self.spill else 0

    def chunks(self) -> Iterator[bytes]:
        """Stream the data: spilled chunks (PFS reads), then the page."""
        if self.spill is not None:
            yield from self.spill.reader()
        page = self._require_page()
        if page.used:
            yield bytes(page.view)

    def records(self) -> Iterator[tuple[bytes, bytes]]:
        """Decode every record in insertion order."""
        for chunk in self.chunks():
            yield from self.layout.iter_records(chunk)

    # ------------------------------------------------------------- manage

    def _require_page(self) -> Page:
        if self.page is None:
            raise ValueError(f"PagedObject {self.name!r} already freed")
        return self.page

    def free(self) -> None:
        """Release the page and any spill file."""
        if self.page is not None:
            self.pool.release(self.page)
            self.page = None
        if self.spill is not None:
            self.spill.discard()
            self.spill = None
        self.nrecords = 0
        self.nbytes = 0

    def __len__(self) -> int:
        return self.nrecords

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PagedObject({self.name!r}, nrecords={self.nrecords}, "
                f"spilled={self.spilled})")
