"""The MR-MPI driver: explicit map / aggregate / convert / reduce.

Faithful to the baseline's coarse-grained memory discipline:

- each phase allocates its full page complement up front
  (map: 1, aggregate: 7, convert: 4, reduce: 3 - paper Section II-B);
- ``aggregate`` stages data through redundant copies: map output page
  -> (two temporary partitioning buffers) -> send buffer ->
  ``MPI_Alltoallv`` -> two receive-buffer pages -> convert input page;
- any data object larger than one page spills to the PFS per the
  configured out-of-core mode;
- a global barrier opens every phase.

The optional ``compress`` phase reproduces MR-MPI's KV compression: it
shrinks the data that aggregate ships but - because the page complement
is fixed - never shrinks the memory footprint (the paper's Figure 11
observation).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.cluster import RankEnv
from repro.core.kmvcontainer import encode_kmv_record, iter_kmv_buffer
from repro.core.records import KVLayout
from repro.io.readers import iter_binary_chunks, iter_text_chunks
from repro.memory.pages import Page, PagePool
from repro.mrmpi.config import MRMPIConfig
from repro.mrmpi.errors import PageOverflowError
from repro.mrmpi.pages import PagedObject

import zlib


def default_partitioner(key: bytes, nprocs: int) -> int:
    return zlib.crc32(key) % nprocs


class _EmitContext:
    """Map/reduce callback context appending to a PagedObject."""

    __slots__ = ("_obj", "nemitted")

    def __init__(self, obj: PagedObject):
        self._obj = obj
        self.nemitted = 0

    def emit(self, key: bytes, value: bytes) -> None:
        self._obj.append_kv(key, value)
        self.nemitted += 1


class MRMPI:
    """One rank's MR-MPI object (mirrors the C++ ``MapReduce`` class)."""

    #: Page complements per phase (paper Section II-B).
    PAGES_MAP = 1
    PAGES_AGGREGATE = 7
    PAGES_CONVERT = 4
    PAGES_REDUCE = 3

    def __init__(self, env: RankEnv, config: MRMPIConfig | None = None,
                 partitioner: Callable[[bytes, int], int] | None = None):
        self.env = env
        self.config = config or MRMPIConfig()
        self.partitioner = partitioner or default_partitioner
        self.layout = KVLayout()  # MR-MPI has no KV-hints
        self.pool = PagePool(env.tracker, self.config.page_size, tag="mrmpi")
        self.kv: PagedObject | None = None
        self.kmv: PagedObject | None = None
        self._seq = 0
        self.total_spilled_bytes = 0
        self.any_spill = False

    # ----------------------------------------------------------- plumbing

    def _name(self, what: str) -> str:
        self._seq += 1
        return f"mrmpi_{what}_{self._seq}"

    def _new_object(self, what: str) -> PagedObject:
        return PagedObject(self.env, self.pool, self._name(what),
                           self.config.mode, self.layout, tag=f"mrmpi_{what}")

    def _retire(self, obj: PagedObject | None) -> None:
        if obj is not None:
            self.total_spilled_bytes += obj.spilled_bytes
            self.any_spill = self.any_spill or obj.spilled
            obj.free()

    def _scratch(self, n: int, tag: str) -> list[Page]:
        """Allocate ``n`` raw scratch pages for the duration of a phase."""
        return [self.pool.acquire(tag) for _ in range(n)]

    def _release(self, pages: list[Page]) -> None:
        for page in pages:
            self.pool.release(page)

    # ---------------------------------------------------------- map phase

    def _run_map(self, feed: Callable[[_EmitContext], None]) -> None:
        """Map phase: one output page, records appended as emitted."""
        self.env.comm.barrier()
        if self.kv is not None:
            raise RuntimeError("map called while a KV object exists; "
                               "aggregate/convert/reduce it or free() first")
        kv = self._new_object("kv")
        ctx = _EmitContext(kv)
        try:
            feed(ctx)
        except PageOverflowError:
            self._retire(kv)
            raise
        kv.finalize()
        self.env.charge_compute(kv.nbytes)
        self.kv = kv

    def map_text_file(self, path: str,
                      map_fn: Callable[[_EmitContext, bytes], None]) -> None:
        """Map over this rank's word-aligned split of a PFS text file."""

        def feed(ctx: _EmitContext) -> None:
            for chunk in iter_text_chunks(self.env, path,
                                          self.config.input_chunk_size):
                map_fn(ctx, chunk)

        self._run_map(feed)

    def map_binary_file(self, path: str, record_size: int,
                        map_fn: Callable[[_EmitContext, bytes], None]) -> None:
        """Map over this rank's block-aligned split of a binary file."""

        def feed(ctx: _EmitContext) -> None:
            for chunk in iter_binary_chunks(self.env, path, record_size,
                                            self.config.input_chunk_size):
                map_fn(ctx, chunk)

        self._run_map(feed)

    def map_items(self, items: Iterable[Any],
                  map_fn: Callable[[_EmitContext, Any], None]) -> None:
        """Map over an in-memory iterable."""

        def feed(ctx: _EmitContext) -> None:
            for item in items:
                map_fn(ctx, item)

        self._run_map(feed)

    def map_kvs(self,
                map_fn: Callable[[_EmitContext, bytes, bytes], None]) -> None:
        """Map over the current KV object (multistage/iterative jobs)."""
        self.env.comm.barrier()
        old = self.kv
        if old is None:
            raise RuntimeError("map_kvs requires an existing KV object")
        self.kv = None
        kv = self._new_object("kv")
        ctx = _EmitContext(kv)
        for key, value in old.records():
            map_fn(ctx, key, value)
        kv.finalize()
        self.env.charge_compute(old.nbytes + kv.nbytes)
        self._retire(old)
        self.kv = kv

    def add(self, other: "MRMPI") -> None:
        """Append another MR object's KVs to this one (the library's
        ``add``), used by multi-dataset workflows.  ``other`` keeps its
        data."""
        self.env.comm.barrier()
        if self.kv is None:
            raise RuntimeError("add requires an existing KV object")
        if other.kv is None:
            raise RuntimeError("the source MR object has no KV data")
        copied = 0
        for key, value in other.kv.records():
            self.kv.append_kv(key, value)
            copied += len(key) + len(value)
        self.env.charge_compute(copied)

    def add_kv(self, key: bytes, value: bytes) -> None:
        """Insert one KV directly (map-without-input workflows)."""
        if self.kv is None:
            self.kv = self._new_object("kv")
        self.kv.append_kv(key, value)

    # ------------------------------------------------------ compress (cps)

    def compress(self, combine_fn: Callable[[bytes, bytes, bytes], bytes],
                 ) -> None:
        """Local KV compression before aggregate (MR-MPI's ``compress``).

        Uses the fixed page complement (bucket + output + temp pages on
        top of the held KV page), so the memory footprint does not
        shrink even when the data does.
        """
        self.env.comm.barrier()
        old = self.kv
        if old is None:
            raise RuntimeError("compress requires an existing KV object")
        scratch = self._scratch(2, "mrmpi_compress_tmp")
        out = self._new_object("kv")
        bucket: dict[bytes, bytes] = {}
        scanned = 0
        for key, value in old.records():
            scanned += len(key) + len(value)
            existing = bucket.get(key)
            bucket[key] = value if existing is None else \
                combine_fn(key, existing, value)
        for key, value in bucket.items():
            out.append_kv(key, value)
        out.finalize()
        self.env.charge_compute(scanned + out.nbytes)
        self._release(scratch)
        self.kv = None
        self._retire(old)
        self.kv = out

    # ----------------------------------------------------- aggregate phase

    def aggregate(self) -> None:
        """All-to-all exchange with MR-MPI's seven-page staging.

        Page complement: KV-out (held) + 2 partitioning temps + send +
        2 receive + convert-input (the new KV object) = 7.  The
        ``copied`` compute charge covers both redundant staging copies
        (map page -> send buffer, receive buffers -> new page).
        """
        self.env.comm.barrier()
        if self.kv is None:
            raise RuntimeError("aggregate requires an existing KV object")
        self._aggregate_rounds()

    # ------------------------------------------------------- convert phase

    def convert(self) -> None:
        """Merge KVs into KMVs (four-page complement).

        In-memory KVs convert with the two-pass count/group algorithm.
        A spilled KV object is converted the way the real library does
        it out-of-core: KVs are first *re-partitioned* into page-sized
        hash partitions on the PFS (one full read plus one full write),
        then each partition is read back and converted in memory.  The
        extra full rewrite of the dataset through the contended PFS is
        a large part of Figure 1's collapse.
        """
        self.env.comm.barrier()
        old = self.kv
        if old is None:
            raise RuntimeError("convert requires an existing KV object")

        # KV (held) + hash-bucket page + temp page + KMV output = 4.
        scratch = self._scratch(2, "mrmpi_cvt_tmp")
        kmv = self._new_object("kmv")

        if old.spilled:
            scanned = self._convert_out_of_core(old, kmv)
        else:
            scanned = self._convert_in_memory(old, kmv)

        kmv.finalize()
        self.env.charge_compute(2 * scanned)
        self._release(scratch)
        self.kv = None
        self._retire(old)
        self.kmv = kmv

    def _convert_in_memory(self, old: PagedObject, kmv: PagedObject) -> int:
        # Pass 1: per-key value counts.
        counts: dict[bytes, int] = {}
        scanned = 0
        for key, value in old.records():
            counts[key] = counts.get(key, 0) + 1
            scanned += len(key) + len(value)

        # Pass 2: group values; emit each KMV as soon as it completes.
        groups: dict[bytes, list[bytes]] = {}
        for key, value in old.records():
            bucket = groups.setdefault(key, [])
            bucket.append(value)
            if len(bucket) == counts[key]:
                kmv.append_record(encode_kmv_record(self.layout, key, bucket))
                del groups[key]
        if groups:
            raise AssertionError("convert pass mismatch (leftover groups)")
        return scanned

    def _convert_out_of_core(self, old: PagedObject,
                             kmv: PagedObject) -> int:
        from repro.io.spill import SpillWriter

        page_size = self.config.page_size
        nparts = max(1, -(-old.nbytes // page_size))
        writers = [
            SpillWriter(self.env.pfs, self.env.comm,
                        f"{old.name}_part{i}")
            for i in range(nparts)
        ]
        # Stage records through a page-sized buffer per write (the
        # scratch pages), appending each hash partition to the PFS.
        staging: list[bytearray] = [bytearray() for _ in range(nparts)]
        scanned = 0
        for key, value in old.records():
            scanned += len(key) + len(value)
            part = zlib.crc32(key) % nparts
            staging[part] += self.layout.encode(key, value)
            if len(staging[part]) >= page_size:
                writers[part].write_chunk(staging[part])
                staging[part] = bytearray()
        for part, buf in enumerate(staging):
            if buf:
                writers[part].write_chunk(buf)

        # Convert each partition in memory.
        for writer in writers:
            groups: dict[bytes, list[bytes]] = {}
            for chunk in writer.reader():
                for key, value in self.layout.iter_records(chunk):
                    groups.setdefault(key, []).append(value)
            for key, values in groups.items():
                kmv.append_record(
                    encode_kmv_record(self.layout, key, values))
            writer.discard()
        return scanned

    # -------------------------------------------------------- reduce phase

    def reduce(self, reduce_fn: Callable[[_EmitContext, bytes, list[bytes]],
                                         None]) -> None:
        """User reduce over the KMVs (three-page complement)."""
        self.env.comm.barrier()
        kmv = self.kmv
        if kmv is None:
            raise RuntimeError("reduce requires a KMV object (run convert)")

        scratch = self._scratch(1, "mrmpi_red_tmp")
        out = self._new_object("kv")
        ctx = _EmitContext(out)
        scanned = 0
        for key, values in self._iter_kmv(kmv):
            reduce_fn(ctx, key, values)
            scanned += len(key) + sum(len(v) for v in values)
        out.finalize()
        self.env.charge_compute(scanned + out.nbytes)
        self._release(scratch)
        self.kmv = None
        self._retire(kmv)
        self.kv = out

    def _iter_kmv(self, kmv: PagedObject) -> Iterator[tuple[bytes, list[bytes]]]:
        for chunk in kmv.chunks():
            yield from iter_kmv_buffer(self.layout, chunk)

    # ----------------------------------------------- extended MR-MPI API

    def collate(self) -> None:
        """Aggregate followed by convert (the library's ``collate``)."""
        self.aggregate()
        self.convert()

    def scan(self, fn: Callable[[bytes, bytes], None]) -> None:
        """Apply ``fn`` to every KV without modifying the data."""
        self.env.comm.barrier()
        if self.kv is None:
            raise RuntimeError("scan requires an existing KV object")
        scanned = 0
        for key, value in self.kv.records():
            fn(key, value)
            scanned += len(key) + len(value)
        self.env.charge_compute(scanned)

    def scan_kmv(self, fn: Callable[[bytes, list[bytes]], None]) -> None:
        """Apply ``fn`` to every KMV without modifying the data."""
        self.env.comm.barrier()
        if self.kmv is None:
            raise RuntimeError("scan_kmv requires a KMV object")
        for key, values in self._iter_kmv(self.kmv):
            fn(key, values)

    def gather(self, nranks: int) -> None:
        """Concentrate all KVs onto the lowest ``nranks`` ranks.

        MR-MPI's ``gather``: records move to rank ``hash % nranks`` so
        a small group (often 1) holds everything, e.g. for final
        output.  Uses the aggregate staging pages.
        """
        self.env.comm.barrier()
        if not 1 <= nranks <= self.env.comm.size:
            raise ValueError(
                f"nranks must be in 1..{self.env.comm.size}, got {nranks}")
        old_partitioner = self.partitioner
        self.partitioner = lambda key, p: old_partitioner(key, nranks)
        try:
            # Reuse aggregate's round protocol for the data movement.
            self._aggregate_rounds()
        finally:
            self.partitioner = old_partitioner

    def broadcast_kvs(self, root: int = 0) -> None:
        """Replicate the root rank's KVs on every rank."""
        comm = self.env.comm
        comm.barrier()
        if self.kv is None:
            raise RuntimeError("broadcast_kvs requires an existing KV object")
        payload = b"".join(self.kv.layout.encode(k, v)
                           for k, v in self.kv.records()) \
            if comm.rank == root else b""
        data = comm.bcast(payload, root=root)
        old = self.kv
        self.kv = None
        self._retire(old)
        fresh = self._new_object("kv")
        for key, value in self.layout.iter_records(data):
            fresh.append_kv(key, value)
        fresh.finalize()
        self.env.charge_compute(len(data))
        self.kv = fresh

    def sort_keys(self) -> None:
        """Sort this rank's KVs by key (external sort when spilled)."""
        self._sort(lambda k, v: k)

    def sort_values(self) -> None:
        """Sort this rank's KVs by value."""
        self._sort(lambda k, v: v)

    def _sort(self, sort_key) -> None:
        from repro.mrmpi.sort import external_sort

        self.env.comm.barrier()
        old = self.kv
        if old is None:
            raise RuntimeError("sort requires an existing KV object")
        scratch = self._scratch(2, "mrmpi_sort_tmp")
        out = self._new_object("kv")
        scanned = external_sort(self.env, old, out, sort_key)
        out.finalize()
        self.env.charge_compute(
            2 * scanned * max(1, (old.nbytes // self.config.page_size)
                              .bit_length()))
        self._release(scratch)
        self.kv = None
        self._retire(old)
        self.kv = out

    def _aggregate_rounds(self) -> None:
        """Shared data-movement core of ``aggregate`` and ``gather``."""
        old = self.kv
        if old is None:
            raise RuntimeError("no KV object to move")
        comm = self.env.comm
        p = comm.size

        temps = self._scratch(2, "mrmpi_agg_tmp")
        send_pages = self._scratch(1, "mrmpi_agg_send")
        recv_pages = self._scratch(2, "mrmpi_agg_recv")
        received = self._new_object("kv")

        page_size = self.config.page_size
        stream = old.records()
        pending: tuple[bytes, int] | None = None
        exhausted = False
        copied = 0
        while True:
            parts: list[list[bytes]] = [[] for _ in range(p)]
            fill = 0
            while not exhausted:
                if pending is None:
                    try:
                        key, value = next(stream)
                    except StopIteration:
                        exhausted = True
                        break
                    record = self.layout.encode(key, value)
                    pending = (record, self.partitioner(key, p))
                record, dest = pending
                if fill + len(record) > page_size:
                    break
                parts[dest].append(record)
                fill += len(record)
                pending = None

            sends = [b"".join(chunk) for chunk in parts]
            incoming = comm.alltoallv(sends)
            copied += fill
            for part in incoming:
                if part:
                    copied += len(part)
                    for key, value in self.layout.iter_records(part):
                        received.append_kv(key, value)
            if comm.all_true(exhausted):
                break

        received.finalize()
        self.env.charge_compute(copied)
        self._release(temps)
        self._release(send_pages)
        self._release(recv_pages)
        self.kv = None
        self._retire(old)
        self.kv = received

    # -------------------------------------------------------------- output

    def collect(self) -> list[tuple[bytes, bytes]]:
        """This rank's current KV records."""
        if self.kv is None:
            return []
        return list(self.kv.records())

    def free(self) -> None:
        """Release all data objects."""
        self._retire(self.kv)
        self._retire(self.kmv)
        self.kv = None
        self.kmv = None
