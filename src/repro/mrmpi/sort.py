"""Out-of-core merge sort for MR-MPI data objects.

The real MR-MPI library exposes ``sort_keys`` / ``sort_values``: local
sorts of a KV object that work even when the data has spilled.  The
classic external-sort structure is reproduced: every resident chunk is
sorted in memory and written out as a sorted run, then the runs are
k-way merged back into a fresh object.  In-memory data sorts without
touching the PFS.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator

from repro.cluster import RankEnv
from repro.core.records import KVLayout
from repro.io.spill import SpillWriter
from repro.mrmpi.pages import PagedObject

#: Sort key extractor: maps ``(key, value)`` to the comparison key.
SortKey = Callable[[bytes, bytes], bytes]


def _sorted_runs(env: RankEnv, obj: PagedObject, layout: KVLayout,
                 sort_key: SortKey) -> list[list[tuple[bytes, bytes, bytes]]]:
    """Split the object into independently sorted runs.

    Each source chunk (spilled page or the resident page) becomes one
    run of ``(sort_key, key, value)`` triples.
    """
    runs = []
    for chunk in obj.chunks():
        run = [(sort_key(k, v), k, v) for k, v in layout.iter_records(chunk)]
        run.sort(key=lambda t: t[0])
        runs.append(run)
    return runs


def _merge_runs(runs: list[list[tuple[bytes, bytes, bytes]]],
                ) -> Iterator[tuple[bytes, bytes]]:
    """K-way merge of sorted runs (stable on equal sort keys)."""
    merged = heapq.merge(*runs, key=lambda t: t[0])
    for _sk, key, value in merged:
        yield key, value


def external_sort(env: RankEnv, obj: PagedObject, out: PagedObject,
                  sort_key: SortKey) -> int:
    """Sort ``obj`` into ``out``; returns the bytes scanned.

    When ``obj`` spilled, the sorted runs are staged through the PFS
    (the I/O-cost-bearing path the real library takes); fully resident
    data merges straight from memory.
    """
    layout = obj.layout
    scanned = obj.nbytes

    if not obj.spilled:
        for run in _sorted_runs(env, obj, layout, sort_key):
            for _sk, key, value in run:
                out.append_kv(key, value)
        return scanned

    # Out-of-core: write each sorted run to the PFS, then stream-merge.
    writers: list[SpillWriter] = []
    run_index: list[list[tuple[bytes, int]]] = []  # (sort_key, chunk#) heads
    for i, run in enumerate(_sorted_runs(env, obj, layout, sort_key)):
        writer = SpillWriter(env.pfs, env.comm, f"{obj.name}_sortrun{i}")
        payload = b"".join(layout.encode(k, v) for _sk, k, v in run)
        writer.write_chunk(payload)
        writers.append(writer)
        run_index.append([(sk, i) for sk, _k, _v in run[:1]])

    # Read every run back (charging PFS reads) and merge.
    materialised = []
    for writer in writers:
        records = []
        for chunk in writer.reader():
            records.extend(
                (sort_key(k, v), k, v)
                for k, v in layout.iter_records(chunk))
        materialised.append(records)
        writer.discard()
    for key, value in _merge_runs(materialised):
        out.append_kv(key, value)
    return scanned
