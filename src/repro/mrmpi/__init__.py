"""MR-MPI baseline: a faithful reimplementation of the comparator.

MR-MPI (Plimpton & Devine, Parallel Computing 2011) is the
state-of-the-art MapReduce-over-MPI library the paper improves on.  Its
defining traits, all reproduced here:

- all intermediate data lives in fixed-size *pages* allocated at the
  start of each phase (minimum 1 / 7 / 4 / 3 pages for map / aggregate /
  convert / reduce);
- the ``aggregate`` and ``convert`` phases are *explicit* - the user
  calls them - and a global barrier separates every phase;
- a full page spills to the parallel file system under one of three
  out-of-core modes (always / when-full / error);
- the aggregate phase stages data through redundant copies (map output
  page -> send buffer -> receive buffers -> convert input page).
"""

from repro.mrmpi.config import MRMPIConfig, OutOfCoreMode
from repro.mrmpi.errors import PageOverflowError
from repro.mrmpi.mrmpi import MRMPI
from repro.mrmpi.pages import PagedObject

__all__ = [
    "MRMPI",
    "MRMPIConfig",
    "OutOfCoreMode",
    "PageOverflowError",
    "PagedObject",
]
