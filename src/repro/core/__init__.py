"""Mimir: the paper's memory-efficient MapReduce-over-MPI core.

Public API:

- :class:`MimirConfig` - page/buffer sizes and the optional
  optimizations (KV-hint, partial reduction, KV compression, codec).
- :class:`KVLayout` - record encoding, including the KV-hint fixed and
  NUL-terminated layouts (``CSTRING``).
- :class:`KVContainer` / :class:`KMVContainer` - the KVC/KMVC opaque
  objects that grow and shrink page-by-page.
- :class:`KVBatch` / :func:`batch_kernel` - the columnar batch view
  over container pages and the marker that opts a kernel into
  whole-batch dispatch.
- :class:`Mimir` - the job driver: ``map_file`` / ``map_kvs`` /
  ``map_items`` (with the implicit interleaved aggregate), ``reduce``
  (implicit convert), and ``partial_reduce``.
"""

from repro.core.batch import KVBatch, batch_kernel, is_batch_kernel
from repro.core.codec import (
    CODEC_SPECS,
    ChainCodec,
    Codec,
    KVDedupCodec,
    ZlibCodec,
    get_codec,
)
from repro.core.config import MimirConfig
from repro.core.errors import ConfigError, RecordTooLargeError
from repro.core.job import MapContext, Mimir, ReduceContext
from repro.core.kmvcontainer import KMVContainer
from repro.core.kvcontainer import KVContainer
from repro.core.records import (
    CSTRING,
    VARIABLE,
    KVLayout,
    pack_u64,
    unpack_u64,
)

__all__ = [
    "CODEC_SPECS",
    "CSTRING",
    "ChainCodec",
    "Codec",
    "ConfigError",
    "KMVContainer",
    "KVBatch",
    "KVContainer",
    "KVDedupCodec",
    "KVLayout",
    "MapContext",
    "Mimir",
    "MimirConfig",
    "RecordTooLargeError",
    "ReduceContext",
    "VARIABLE",
    "ZlibCodec",
    "batch_kernel",
    "get_codec",
    "is_batch_kernel",
    "pack_u64",
    "unpack_u64",
]
