"""Global (cross-rank) sample sort for Mimir KV data.

``sort_local`` orders one rank's records; :func:`global_sort` produces
a total order across ranks: after sorting, every key on rank ``r``
compares less-than-or-equal to every key on rank ``r+1`` and each
rank's records are locally sorted.

Classic sample sort over the existing primitives: each rank publishes
a sample of its keys (allgather), identical splitters are derived
everywhere, records are shuffled with a range partitioner (one
bisection per record), and each rank sorts what it received.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.cluster import RankEnv
from repro.core.config import MimirConfig
from repro.core.kvcontainer import KVContainer
from repro.core.shuffle import Shuffler

#: Samples each rank contributes per destination rank.
DEFAULT_OVERSAMPLE = 8


def choose_splitters(samples: list[bytes], nprocs: int) -> list[bytes]:
    """Derive ``nprocs - 1`` splitters from the pooled key samples."""
    if nprocs <= 1 or not samples:
        return []
    ordered = sorted(samples)
    splitters = []
    for i in range(1, nprocs):
        idx = min(len(ordered) - 1, (i * len(ordered)) // nprocs)
        splitters.append(ordered[idx])
    return splitters


def range_partitioner(splitters: list[bytes]):
    """Partitioner sending keys to the rank owning their key range."""

    def partition(key: bytes, nprocs: int) -> int:
        return min(bisect_right(splitters, key), nprocs - 1)

    return partition


def global_sort(env: RankEnv, kvc: KVContainer, config: MimirConfig, *,
                by_value: bool = False,
                oversample: int = DEFAULT_OVERSAMPLE,
                batch: bool = False,
                out_tag: str = "kv_gsorted") -> KVContainer:
    """Globally sort ``kvc`` (consumed) across all ranks.

    Returns this rank's slice of the total order.  Duplicate keys may
    land on either side of a splitter boundary but the global order is
    still correct (splitters compare with ``<=``).

    With ``batch=True`` records move through the columnar batch path:
    records are copied as arena slices (one dispatch per page) instead
    of being re-encoded one by one.  The sample keys - and therefore
    the splitters - are computed from the same materialised key list
    in both modes, so the output is byte-identical.
    """
    comm = env.comm
    field = (lambda k, v: v) if by_value else (lambda k, v: k)
    if by_value:
        batch = False  # value routing stays per-record

    # Sample this rank's sort keys at regular strides.
    if batch:
        local = [k for b in kvc.batches() for k in b.keys_bytes()]
    else:
        local = [field(k, v) for k, v in kvc.records()]
    want = max(1, comm.size * oversample)
    stride = max(1, len(local) // want)
    sample = sorted(local)[::stride][:want] if local else []

    pooled = [key for part in comm.allgather(sample) for key in part]
    splitters = choose_splitters(pooled, comm.size)

    if by_value:
        partition_value = range_partitioner(splitters)

        def partitioner(key: bytes, nprocs: int) -> int:
            # The shuffle hashes keys; for value sorting we wrap the
            # record so the partitioner sees the value.
            return partition_value(key, nprocs)
    else:
        partitioner = range_partitioner(splitters)

    # Range-shuffle, then order locally.
    out = KVContainer(env.tracker, kvc.layout, config.page_size,
                      tag=out_tag)
    shuffler = Shuffler(env, config, out,
                        partitioner if not by_value else None)
    if by_value:
        # Route by value: emit with an explicit destination.
        for key, value in kvc.consume():
            record = kvc.layout.encode(key, value)
            shuffler.emit_record(record,
                                 partition_value(value, comm.size))
    elif batch:
        dest_for = lambda key: partitioner(key, comm.size)  # noqa: E731
        for kvbatch in kvc.consume_batches():
            shuffler.emit_keyed_batch(kvbatch, dest_for)
    else:
        for key, value in kvc.consume():
            shuffler.emit(key, value)
    shuffler.finish()
    env.charge_compute(shuffler.bytes_sent)
    env.charge_ops(shuffler.ops)

    if batch:
        received = (kv for b in out.consume_batches()
                    for kv in b.pairs_bytes())
    else:
        received = out.consume()
    records = sorted(received, key=lambda kv: field(*kv))
    result = KVContainer(env.tracker, out.layout, config.page_size,
                         tag=out_tag)
    for key, value in records:
        result.add(key, value)
    env.charge_compute(result.nbytes)
    return result
