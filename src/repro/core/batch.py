"""Columnar batch views over packed KV runs.

The per-record iterators (`KVContainer.records()` and friends)
materialise two ``bytes`` objects per record and cross several Python
frames per record - the dominant cost of every core benchmark.  A
:class:`KVBatch` is the columnar alternative: one arena (the packed
page or chunk, untouched) plus ``array('Q')`` offset columns produced
by :meth:`~repro.core.records.KVLayout.scan`.  Fields are read as
``memoryview`` slices of the arena, so iterating a whole page
allocates no per-record objects until the caller explicitly asks for
``bytes``.

Kernels opt into whole-batch processing with the
:func:`batch_kernel` decorator; drivers check :func:`is_batch_kernel`
and fall back to the per-record path for plain callables, so user
code never has to change.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.records import KVLayout


def batch_kernel(fn):
    """Mark a callable as accepting whole batches instead of records.

    A batch map kernel is called as ``fn(ctx, batch)`` per input chunk
    or :class:`KVBatch`; a batch reduce kernel as ``fn(ctx, groups)``
    per page of ``(key, values)`` groups; a batch partial-reduce
    kernel as ``fn(bucket, batch)``.
    """
    fn.is_batch_kernel = True
    return fn


def is_batch_kernel(fn) -> bool:
    return bool(getattr(fn, "is_batch_kernel", False))


class KVBatch:
    """One packed run of KV records plus its offset columns.

    A batch is a *view*: it borrows the underlying buffer (typically a
    live container page), so it is only valid until the producing
    iterator advances.  ``arena`` covers exactly the scanned records.
    """

    __slots__ = ("arena", "roff", "koff", "kend", "voff", "vend")

    def __init__(self, buf, layout: KVLayout, end: int | None = None):
        roff, koff, kend, voff, vend = layout.scan(buf, end)
        self.arena = memoryview(buf)[: roff[-1]]
        self.roff = roff
        self.koff = koff
        self.kend = kend
        self.voff = voff
        self.vend = vend

    def __len__(self) -> int:
        return len(self.koff)

    @property
    def nbytes(self) -> int:
        """Encoded bytes covered by this batch (headers included)."""
        return self.roff[-1] if len(self.roff) else 0

    @property
    def payload_bytes(self) -> int:
        """Key plus value bytes, headers excluded - what the
        per-record paths charge compute for, kept chargeable here
        without touching any record."""
        return (sum(self.kend) - sum(self.koff) +
                sum(self.vend) - sum(self.voff))

    # ------------------------------------------------------- zero-copy

    def keys(self) -> Iterator[memoryview]:
        """Key fields as arena slices (no per-record allocation)."""
        arena = self.arena
        for start, stop in zip(self.koff, self.kend):
            yield arena[start:stop]

    def values(self) -> Iterator[memoryview]:
        arena = self.arena
        for start, stop in zip(self.voff, self.vend):
            yield arena[start:stop]

    def pairs(self) -> Iterator[tuple[memoryview, memoryview]]:
        """``(key, value)`` as arena slices, in record order."""
        arena = self.arena
        for ks, ke, vs, ve in zip(self.koff, self.kend,
                                  self.voff, self.vend):
            yield arena[ks:ke], arena[vs:ve]

    def record(self, i: int) -> memoryview:
        """The complete encoded record ``i`` (headers included)."""
        return self.arena[self.roff[i] : self.roff[i + 1]]

    # ----------------------------------------------- materialised views

    def key_bytes(self, i: int) -> bytes:
        return bytes(self.arena[self.koff[i] : self.kend[i]])

    def value_bytes(self, i: int) -> bytes:
        return bytes(self.arena[self.voff[i] : self.vend[i]])

    def keys_bytes(self) -> Iterator[bytes]:
        """Keys as ``bytes`` (hashable/orderable), one tight frame."""
        arena = self.arena
        for start, stop in zip(self.koff, self.kend):
            yield bytes(arena[start:stop])

    def pairs_bytes(self) -> Iterator[tuple[bytes, bytes]]:
        """``(key, value)`` as ``bytes``: the compatibility iterator.

        Yields exactly what :meth:`KVLayout.iter_records` would for the
        same buffer, but from precomputed offsets in a single frame.
        """
        arena = self.arena
        for ks, ke, vs, ve in zip(self.koff, self.kend,
                                  self.voff, self.vend):
            yield bytes(arena[ks:ke]), bytes(arena[vs:ve])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KVBatch(nrecords={len(self)}, nbytes={self.nbytes})"
