"""Shuffle/spill codecs: the paper's KV-compression optimization.

The paper's Figures 11-12 show compression wins that *grow with skew*:
the more duplicate keys a KV stream carries, the more a key-aware
encoding saves.  This module provides the pluggable codec layer behind
``MimirConfig.codec``:

- :class:`ZlibCodec` - general-purpose DEFLATE over the packed run.
- :class:`KVDedupCodec` - key-dedup/varint framing: every unique key
  is stored once in a first-seen dictionary and records become
  ``(varint key-index, value)`` pairs, which is where skewed streams
  collapse.  Decoding re-encodes each record through the layout, so
  the round trip is byte-exact.
- :class:`ChainCodec` - composition (``"dedup+zlib"`` runs the varint
  framing and then DEFLATE over the residue).

Every encoded chunk is wrapped in a one-byte frame: ``0x00`` means the
payload is stored raw (the codec would have grown it - incompressible
data never regresses), ``0x01`` means encoded.  Frames are
deterministic, so identical inputs produce identical spill files and
wire bytes on every rank.
"""

from __future__ import annotations

import zlib

from repro.core.errors import ConfigError
from repro.core.records import KVLayout

_RAW = b"\x00"
_ENCODED = b"\x01"


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


class Codec:
    """One reversible transform over a packed record run."""

    #: Registry spec; subclasses override.
    name = "identity"

    def encode(self, data: bytes) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    def decode(self, data: bytes) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------ framing

    def encode_frame(self, data: bytes) -> bytes:
        """Encode with the skip-if-bigger guard; never grows by > 1 byte."""
        body = self.encode(data)
        if len(body) >= len(data):
            return _RAW + data
        return _ENCODED + body

    def decode_frame(self, frame) -> bytes:
        if isinstance(frame, memoryview):
            frame = bytes(frame)
        if not frame:
            return b""
        flag, body = frame[:1], frame[1:]
        if flag == _RAW:
            return bytes(body)
        if flag == _ENCODED:
            return self.decode(bytes(body))
        raise ValueError(f"bad codec frame flag {flag!r}")


class ZlibCodec(Codec):
    """DEFLATE the packed run (the paper's general-purpose baseline)."""

    name = "zlib"

    def __init__(self, level: int = 6):
        self.level = level

    def encode(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decode(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class KVDedupCodec(Codec):
    """Key-dedup/varint framing for skewed key distributions.

    Encoding: a first-seen key dictionary (varint count, then varint
    length + key bytes each), followed by one ``(varint key-index,
    varint value-length, value bytes)`` triple per record.  Decoding
    re-encodes every record through the layout, so the output is the
    exact original byte run (containers and the shuffle only ever
    store ``layout.encode`` output).
    """

    name = "dedup"

    def __init__(self, layout: KVLayout):
        self.layout = layout

    def encode(self, data: bytes) -> bytes:
        _roff, koff, kend, voff, vend = self.layout.scan(data)
        index: dict[bytes, int] = {}
        keys: list[bytes] = []
        body = bytearray()
        for ks, ke, vs, ve in zip(koff, kend, voff, vend):
            key = data[ks:ke]
            slot = index.get(key)
            if slot is None:
                slot = index[key] = len(keys)
                keys.append(key)
            _write_varint(body, slot)
            _write_varint(body, ve - vs)
            body += data[vs:ve]
        head = bytearray()
        _write_varint(head, len(keys))
        for key in keys:
            _write_varint(head, len(key))
            head += key
        return bytes(head + body)

    def decode(self, data: bytes) -> bytes:
        nkeys, offset = _read_varint(data, 0)
        keys: list[bytes] = []
        for _ in range(nkeys):
            klen, offset = _read_varint(data, offset)
            keys.append(data[offset : offset + klen])
            offset += klen
        encode = self.layout.encode
        out = bytearray()
        end = len(data)
        while offset < end:
            slot, offset = _read_varint(data, offset)
            vlen, offset = _read_varint(data, offset)
            out += encode(keys[slot], data[offset : offset + vlen])
            offset += vlen
        return bytes(out)


class ChainCodec(Codec):
    """Apply stages in order on encode, in reverse on decode."""

    def __init__(self, stages: list[Codec]):
        if not stages:
            raise ValueError("ChainCodec needs at least one stage")
        self.stages = list(stages)
        self.name = "+".join(stage.name for stage in self.stages)

    def encode(self, data: bytes) -> bytes:
        for stage in self.stages:
            data = stage.encode(data)
        return data

    def decode(self, data: bytes) -> bytes:
        for stage in reversed(self.stages):
            data = stage.decode(data)
        return data


#: Specs accepted by ``MimirConfig.codec``.
CODEC_SPECS = ("zlib", "dedup", "dedup+zlib")


def get_codec(spec: str | None, layout: KVLayout) -> Codec | None:
    """Resolve a ``MimirConfig.codec`` spec against a KV layout."""
    if spec is None:
        return None
    if spec == "zlib":
        return ZlibCodec()
    if spec == "dedup":
        return KVDedupCodec(layout)
    if spec == "dedup+zlib":
        return ChainCodec([KVDedupCodec(layout), ZlibCodec()])
    raise ConfigError(
        f"unknown codec {spec!r}; expected one of {CODEC_SPECS}")


def note_encode(metrics, raw_len: int, frame_len: int) -> None:
    """Emit the ``core.codec.*`` counters for one encoded chunk."""
    if metrics is not None:
        metrics.inc("core.codec.chunks")
        metrics.inc("core.codec.bytes_in", raw_len)
        metrics.inc("core.codec.bytes_out", frame_len)
