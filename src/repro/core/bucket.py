"""Memory-accounted hash bucket of unique keys.

Used by the three places the paper keeps per-unique-key state: the
two-pass convert (size gathering), KV compression (map-side combine),
and partial reduction.  Every entry is charged to the rank's memory
tracker - the paper is explicit that these buckets cost memory and only
pay off when duplicate keys are frequent, and that trade-off must show
up in the peak-memory measurements.
"""

from __future__ import annotations

from typing import Iterator

from repro.memory.tracker import MemoryTracker


class AccountedBucket:
    """A ``dict[bytes, bytes]``-like map charged to a tracker.

    The accounting model is ``len(key) + len(value) + entry_overhead``
    bytes per entry, adjusted when a value is replaced by one of a
    different size.
    """

    def __init__(self, tracker: MemoryTracker, entry_overhead: int = 48,
                 tag: str = "bucket"):
        self.tracker = tracker
        self.entry_overhead = entry_overhead
        self.tag = tag
        self._data: dict[bytes, bytes] = {}
        self.accounted_bytes = 0

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: bytes) -> bytes | None:
        return self._data.get(key)

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or replace, keeping the accounting in sync."""
        old = self._data.get(key)
        if old is None:
            delta = len(key) + len(value) + self.entry_overhead
            self.tracker.allocate(delta, self.tag)
            self.accounted_bytes += delta
        elif len(value) != len(old):
            delta = len(value) - len(old)
            if delta > 0:
                self.tracker.allocate(delta, self.tag)
            else:
                self.tracker.free(-delta, self.tag)
            self.accounted_bytes += delta
        self._data[key] = value

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Non-destructive iteration in insertion order."""
        return iter(self._data.items())

    def drain(self) -> Iterator[tuple[bytes, bytes]]:
        """Destructive iteration, releasing accounting entry-by-entry.

        Mirrors how Mimir reclaims bucket memory while flushing
        compressed KVs into the send buffer.
        """
        while self._data:
            key, value = next(iter(self._data.items()))
            del self._data[key]
            delta = len(key) + len(value) + self.entry_overhead
            self.tracker.free(delta, self.tag)
            self.accounted_bytes -= delta
            yield key, value

    def free(self) -> None:
        """Drop all entries and release the accounting."""
        if self.accounted_bytes:
            self.tracker.free(self.accounted_bytes, self.tag)
        self.accounted_bytes = 0
        self._data.clear()


class CountingBucket:
    """Per-unique-key counters for convert pass one.

    Stores ``key -> (count, total_value_bytes)`` and charges the
    tracker for the key bytes plus fixed per-entry bookkeeping.
    """

    def __init__(self, tracker: MemoryTracker, entry_overhead: int = 48,
                 tag: str = "convert_bucket"):
        self.tracker = tracker
        self.entry_overhead = entry_overhead + 16  # two u64 counters
        self.tag = tag
        self._data: dict[bytes, list[int]] = {}
        self.accounted_bytes = 0

    def add(self, key: bytes, value_bytes: int) -> None:
        entry = self._data.get(key)
        if entry is None:
            delta = len(key) + self.entry_overhead
            self.tracker.allocate(delta, self.tag)
            self.accounted_bytes += delta
            self._data[key] = [1, value_bytes]
        else:
            entry[0] += 1
            entry[1] += value_bytes

    def items(self) -> Iterator[tuple[bytes, list[int]]]:
        return iter(self._data.items())

    def __len__(self) -> int:
        return len(self._data)

    def free(self) -> None:
        if self.accounted_bytes:
            self.tracker.free(self.accounted_bytes, self.tag)
        self.accounted_bytes = 0
        self._data.clear()
