"""Errors raised by the Mimir core."""

from __future__ import annotations


class MimirError(RuntimeError):
    """Base class for Mimir failures."""


class RecordTooLargeError(MimirError):
    """A single encoded record exceeds the buffer it must fit in.

    Records never straddle page or partition boundaries, so one record
    larger than a page (or a send-buffer partition) cannot be stored.
    """

    def __init__(self, record_size: int, capacity: int, where: str):
        self.record_size = record_size
        self.capacity = capacity
        self.where = where
        super().__init__(
            f"record of {record_size} bytes does not fit in {where} "
            f"of {capacity} bytes")


class ConfigError(MimirError):
    """Invalid or inconsistent Mimir configuration."""
