"""The Mimir job driver: user-facing map / reduce entry points.

A :class:`Mimir` instance is bound to one rank's :class:`RankEnv`.
Map calls run the user callback over this rank's share of the input
and perform the *implicit* aggregate (interleaved exchange rounds);
``reduce`` performs the *implicit* convert followed by the user reduce
callback; ``partial_reduce`` replaces both when the operation is
commutative/associative.  Passing ``combine_fn`` to any map call
enables KV compression.

Input sources (paper Section III-A): files on the PFS (text or binary),
KVs from a previous MapReduce operation (``map_kvs``, for multistage
and iterative jobs), and arbitrary in-memory items (``map_items``, for
in-situ sources).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.cluster import RankEnv

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.core.metrics import PhaseProfile
from repro.core.batch import is_batch_kernel
from repro.core.codec import get_codec
from repro.core.combiner import CombineFn, Combiner
from repro.core.config import MimirConfig
from repro.core.convert import iter_grouped, iter_grouped_batches
from repro.core.kvcontainer import KVContainer
from repro.core.partial_reduction import PartialReduceFn, partial_reduce
from repro.core.records import KVLayout
from repro.core.shuffle import Shuffler
from repro.io.readers import (
    iter_binary_chunks,
    iter_binary_chunks_multi,
    iter_text_chunks,
    iter_text_chunks_multi,
)


class MapContext:
    """Handed to map callbacks; ``emit`` routes into the shuffle.

    Batch kernels use the bulk emits, which cost one framework
    dispatch for a whole run of records instead of one per record
    while producing byte-identical shuffle traffic.
    """

    __slots__ = ("_sink", "nemitted")

    def __init__(self, sink):
        self._sink = sink
        self.nemitted = 0

    def emit(self, key: bytes, value: bytes) -> None:
        self._sink.emit(key, value)
        self.nemitted += 1

    def emit_run(self, keys, value: bytes) -> None:
        """Emit ``(key, value)`` for every key, sharing one value."""
        sink = self._sink
        before = sink.records_in if hasattr(sink, "records_in") \
            else sink.records_sent
        sink.emit_run(keys, value)
        after = sink.records_in if hasattr(sink, "records_in") \
            else sink.records_sent
        self.nemitted += after - before

    def emit_pairs(self, pairs) -> None:
        """Emit an iterable of ``(key, value)`` pairs in one dispatch."""
        sink = self._sink
        before = sink.records_in if hasattr(sink, "records_in") \
            else sink.records_sent
        sink.emit_pairs(pairs)
        after = sink.records_in if hasattr(sink, "records_in") \
            else sink.records_sent
        self.nemitted += after - before

    def emit_batch(self, batch) -> None:
        """Re-emit every record of a :class:`~repro.core.batch.KVBatch`."""
        self._sink.emit_batch(batch)
        self.nemitted += len(batch)


class ReduceContext:
    """Handed to reduce callbacks; ``emit`` appends to the local output."""

    __slots__ = ("_out", "nemitted")

    def __init__(self, out: KVContainer):
        self._out = out
        self.nemitted = 0

    def emit(self, key: bytes, value: bytes) -> None:
        self._out.add(key, value)
        self.nemitted += 1


class Mimir:
    """MapReduce driver for one rank of a simulated job."""

    def __init__(self, env: RankEnv, config: MimirConfig | None = None, *,
                 profile: "PhaseProfile | None" = None, trace=None):
        self.env = env
        self.config = config or MimirConfig()
        #: Backend this job's spill traffic lands on: the cluster
        #: substrate unless ``config.storage`` redirects it to a
        #: companion backend (inputs/outputs always stay on the
        #: substrate).
        self._spill_store = (env.storage_for(self.config.storage)
                             if self.config.storage else None)
        #: Optional per-phase profiler (see :mod:`repro.core.metrics`).
        self.profile = profile
        #: Optional structured event sink (see :mod:`repro.tools.trace`).
        self.trace = trace
        #: Statistics of the most recent map/aggregate phase:
        #: ``{"records", "kv_bytes", "rounds"}``.  ``kv_bytes`` is the
        #: total encoded KV volume that crossed the wire - the metric
        #: of the paper's Figure 7.
        self.last_map_stats: dict[str, int] = {}

    # ----------------------------------------------------------- plumbing

    def _run_map(self, feed: Callable[[MapContext], None], *,
                 combine_fn: CombineFn | None,
                 partitioner: Callable[[bytes, int], int] | None,
                 layout: KVLayout | None,
                 out_tag: str) -> KVContainer:
        """Shared skeleton: feed records through (combiner ->) shuffler."""
        stream_layout = layout or self.config.layout
        out = KVContainer(
            self.env.tracker, stream_layout,
            self.config.page_size, tag=out_tag,
            spill_env=self.env if self.config.out_of_core else None,
            spill_store=self._spill_store,
            codec=get_codec(self.config.codec, stream_layout),
            codec_env=self.env)
        span = self.profile.phase("map+aggregate") if self.profile \
            else nullcontext()
        started = self.env.comm.clock.time
        if self.trace is not None:
            self.trace.emit(self.env, "phase", "map+aggregate:start")
        with span:
            shuffler = Shuffler(self.env, self.config, out, partitioner,
                                trace=self.trace)
            if combine_fn is not None:
                sink = Combiner(self.env, self.config, combine_fn, shuffler)
                feed(MapContext(sink))
                sink.finish()
            else:
                sink = shuffler
                feed(MapContext(sink))
                shuffler.finish()
            self.env.charge_compute(shuffler.bytes_sent)
            # Framework dispatch overhead: one op per emit call (a batch
            # emit is one op however many records it carried).
            self.env.charge_ops(sink.ops)
        self.last_map_stats = {
            "records": shuffler.records_sent,
            "kv_bytes": shuffler.bytes_sent,
            "rounds": shuffler.rounds,
        }
        if self.profile is not None:
            self.profile.annotate_last(rounds=shuffler.rounds,
                                       spilled_bytes=out.spilled_bytes,
                                       batch_records=sink.batch_records,
                                       batch_pages=sink.batch_calls)
        metrics = self.env.metrics
        metrics.inc("core.map.records", shuffler.records_sent)
        metrics.inc("core.map.kv_bytes", shuffler.bytes_sent)
        metrics.inc("core.map.rounds", shuffler.rounds)
        if sink.batch_calls:
            metrics.inc("core.batch.records", sink.batch_records)
            metrics.inc("core.batch.pages", sink.batch_calls)
        if out.spilled_bytes:
            metrics.inc("core.spill.bytes", out.spilled_bytes)
        metrics.observe("core.phase.seconds",
                        self.env.comm.clock.time - started)
        if self.trace is not None:
            self.trace.emit(self.env, "phase", "map+aggregate:end",
                            **self.last_map_stats)
        return out

    def _reusable(self, kvc: KVContainer, consume: bool,
                  tag: str) -> KVContainer:
        """The input for a consuming pipeline stage.

        With ``consume`` the container itself is handed over (and
        drained by the stage, Mimir's default).  Without it the records
        are copied into a scratch container that the stage drains
        instead, leaving the original intact - the non-destructive read
        path that lets the dataflow cache (:mod:`repro.sched`) feed one
        materialized container to many consumers.
        """
        if consume:
            return kvc
        scratch = KVContainer(
            self.env.tracker, kvc.layout, self.config.page_size, tag=tag,
            spill_env=self.env if self.config.out_of_core else None,
            spill_store=self._spill_store)
        for batch in kvc.batches():
            scratch.extend_encoded(batch.arena)
        self.env.charge_compute(scratch.nbytes)
        return scratch

    # -------------------------------------------------------- map sources

    def map_text_file(self, path: str,
                      map_fn: Callable[[MapContext, bytes], None], *,
                      combine_fn: CombineFn | None = None,
                      partitioner: Callable[[bytes, int], int] | None = None,
                      layout: KVLayout | None = None,
                      out_tag: str = "kv_shuffled") -> KVContainer:
        """Map over this rank's word-aligned split of a PFS text file.

        ``map_fn`` is called once per chunk (roughly
        ``config.input_chunk_size`` bytes, never splitting a word).
        """

        def feed(ctx: MapContext) -> None:
            for chunk in iter_text_chunks(self.env, path,
                                          self.config.input_chunk_size):
                map_fn(ctx, chunk)

        return self._run_map(feed, combine_fn=combine_fn,
                             partitioner=partitioner, layout=layout,
                             out_tag=out_tag)

    def map_binary_file(self, path: str, record_size: int,
                        map_fn: Callable[[MapContext, bytes], None], *,
                        combine_fn: CombineFn | None = None,
                        partitioner: Callable[[bytes, int], int] | None = None,
                        layout: KVLayout | None = None,
                        out_tag: str = "kv_shuffled") -> KVContainer:
        """Map over this rank's block-aligned split of a binary PFS file.

        ``map_fn`` receives chunks whose length is a multiple of
        ``record_size``.
        """

        def feed(ctx: MapContext) -> None:
            for chunk in iter_binary_chunks(self.env, path, record_size,
                                            self.config.input_chunk_size):
                map_fn(ctx, chunk)

        return self._run_map(feed, combine_fn=combine_fn,
                             partitioner=partitioner, layout=layout,
                             out_tag=out_tag)

    def map_text_files(self, paths: "str | list[str]",
                       map_fn: Callable[[MapContext, bytes], None], *,
                       combine_fn: CombineFn | None = None,
                       partitioner: Callable[[bytes, int], int] | None = None,
                       layout: KVLayout | None = None,
                       out_tag: str = "kv_shuffled") -> KVContainer:
        """Map over a multi-file text input (directory prefix or list).

        Whole files are assigned round-robin to ranks; a trailing ``/``
        expands to every file under that prefix.
        """

        def feed(ctx: MapContext) -> None:
            for chunk in iter_text_chunks_multi(
                    self.env, paths, self.config.input_chunk_size):
                map_fn(ctx, chunk)

        return self._run_map(feed, combine_fn=combine_fn,
                             partitioner=partitioner, layout=layout,
                             out_tag=out_tag)

    def map_binary_files(self, paths: "str | list[str]", record_size: int,
                         map_fn: Callable[[MapContext, bytes], None], *,
                         combine_fn: CombineFn | None = None,
                         partitioner: Callable[[bytes, int], int] | None = None,
                         layout: KVLayout | None = None,
                         out_tag: str = "kv_shuffled") -> KVContainer:
        """Map over a multi-file binary input (directory prefix or list)."""

        def feed(ctx: MapContext) -> None:
            for chunk in iter_binary_chunks_multi(
                    self.env, paths, record_size,
                    self.config.input_chunk_size):
                map_fn(ctx, chunk)

        return self._run_map(feed, combine_fn=combine_fn,
                             partitioner=partitioner, layout=layout,
                             out_tag=out_tag)

    def map_items(self, items: Iterable[Any],
                  map_fn: Callable[[MapContext, Any], None], *,
                  combine_fn: CombineFn | None = None,
                  partitioner: Callable[[bytes, int], int] | None = None,
                  layout: KVLayout | None = None,
                  out_tag: str = "kv_shuffled") -> KVContainer:
        """Map over an in-memory iterable (in-situ data source)."""

        def feed(ctx: MapContext) -> None:
            for item in items:
                map_fn(ctx, item)

        return self._run_map(feed, combine_fn=combine_fn,
                             partitioner=partitioner, layout=layout,
                             out_tag=out_tag)

    def map_kvs(self, kvc: KVContainer,
                map_fn: Callable[[MapContext, bytes, bytes], None], *,
                combine_fn: CombineFn | None = None,
                partitioner: Callable[[bytes, int], int] | None = None,
                layout: KVLayout | None = None,
                out_tag: str = "kv_shuffled",
                consume: bool = True) -> KVContainer:
        """Map over a previous operation's KVs.

        By default the input is consumed as it drains (Mimir's
        memory-efficient multistage path); ``consume=False`` reads it
        non-destructively so a cached container can be mapped again.

        A ``map_fn`` marked with
        :func:`~repro.core.batch.batch_kernel` is called once per
        container page as ``map_fn(ctx, batch)`` with a
        :class:`~repro.core.batch.KVBatch` instead of once per record.
        """

        if is_batch_kernel(map_fn):
            def feed(ctx: MapContext) -> None:
                source = kvc.consume_batches() if consume else kvc.batches()
                for batch in source:
                    map_fn(ctx, batch)
        else:
            def feed(ctx: MapContext) -> None:
                source = kvc.consume() if consume else kvc.records()
                for key, value in source:
                    map_fn(ctx, key, value)

        return self._run_map(feed, combine_fn=combine_fn,
                             partitioner=partitioner, layout=layout,
                             out_tag=out_tag)

    # ------------------------------------------------------------- reduce

    def reduce(self, kvc: KVContainer,
               reduce_fn: Callable[[ReduceContext, bytes, list[bytes]], None],
               *, out_layout: KVLayout | None = None,
               out_tag: str = "kv_out",
               consume: bool = True) -> KVContainer:
        """Implicit convert (two-pass) followed by the user reduce.

        Consumes ``kvc`` unless ``consume=False`` (which groups a
        scratch copy and leaves the input intact).  The reduce output
        stays rank-local; a global barrier separates the map and reduce
        sides, as the MapReduce model requires.

        A ``reduce_fn`` marked with
        :func:`~repro.core.batch.batch_kernel` is called once per KMV
        page as ``reduce_fn(ctx, groups)`` with a list of
        ``(key, values)`` groups instead of once per key.
        """
        self.env.comm.barrier()
        span = self.profile.phase("convert+reduce") if self.profile \
            else nullcontext()
        started = self.env.comm.clock.time
        if self.trace is not None:
            self.trace.emit(self.env, "phase", "convert+reduce:start")
        with span:
            source = self._reusable(kvc, consume, "kv_regroup")
            out = KVContainer(
                self.env.tracker, out_layout or KVLayout(),
                self.config.page_size, tag=out_tag,
                spill_env=self.env if self.config.out_of_core else None,
                spill_store=self._spill_store)
            ctx = ReduceContext(out)
            reduced_bytes = 0
            reduced_keys = 0
            ops = 0
            batch_pages = 0
            if is_batch_kernel(reduce_fn):
                for groups in iter_grouped_batches(self.env, source,
                                                   self.config):
                    reduce_fn(ctx, groups)
                    ops += 1
                    batch_pages += 1
                    reduced_keys += len(groups)
                    reduced_bytes += sum(
                        len(key) + sum(len(v) for v in values)
                        for key, values in groups)
            else:
                for key, values in iter_grouped(self.env, source,
                                                self.config):
                    reduce_fn(ctx, key, values)
                    ops += 1
                    reduced_keys += 1
                    reduced_bytes += len(key) + sum(len(v) for v in values)
            self.env.charge_compute(reduced_bytes)
            self.env.charge_ops(ops)
        metrics = self.env.metrics
        metrics.inc("core.reduce.keys", reduced_keys)
        metrics.inc("core.reduce.bytes", reduced_bytes)
        if batch_pages:
            metrics.inc("core.batch.records", reduced_keys)
            metrics.inc("core.batch.pages", batch_pages)
        if self.profile is not None and batch_pages:
            self.profile.annotate_last(batch_records=reduced_keys,
                                       batch_pages=batch_pages)
        if out.spilled_bytes:
            metrics.inc("core.spill.bytes", out.spilled_bytes)
        metrics.observe("core.phase.seconds",
                        self.env.comm.clock.time - started)
        if self.trace is not None:
            self.trace.emit(self.env, "phase", "convert+reduce:end",
                            keys=reduced_keys)
        if self.profile is not None:
            self.profile.annotate_last(spilled_bytes=out.spilled_bytes)
        return out

    def partial_reduce(self, kvc: KVContainer, pr_fn: PartialReduceFn, *,
                       out_layout: KVLayout | None = None,
                       out_tag: str = "kv_out",
                       consume: bool = True,
                       seed: KVContainer | None = None,
                       seed_consume: bool = True) -> KVContainer:
        """Streaming replacement for convert+reduce (needs invariance).

        A ``pr_fn`` marked with :func:`~repro.core.batch.batch_kernel`
        folds one :class:`~repro.core.batch.KVBatch` per call as
        ``pr_fn(bucket, batch)``.  ``seed`` pre-loads the fold bucket
        from an existing aggregate (the incremental-window hook used by
        :mod:`repro.stream`); pass ``seed_consume=False`` to read it
        non-destructively.
        """
        self.env.comm.barrier()
        span = self.profile.phase("partial_reduce") if self.profile \
            else nullcontext()
        started = self.env.comm.clock.time
        if self.trace is not None:
            self.trace.emit(self.env, "phase", "partial_reduce:start")
        stats: dict[str, int] = {}
        with span:
            source = self._reusable(kvc, consume, "kv_refold")
            out = partial_reduce(self.env, source, pr_fn, self.config,
                                 out_layout, out_tag, stats=stats,
                                 seed=seed, seed_consume=seed_consume)
        metrics = self.env.metrics
        metrics.inc("core.partial_reduce.records", len(out))
        if stats.get("batch_pages"):
            metrics.inc("core.batch.records", stats["batch_records"])
            metrics.inc("core.batch.pages", stats["batch_pages"])
            if self.profile is not None:
                self.profile.annotate_last(
                    batch_records=stats["batch_records"],
                    batch_pages=stats["batch_pages"])
        if out.spilled_bytes:
            metrics.inc("core.spill.bytes", out.spilled_bytes)
        metrics.observe("core.phase.seconds",
                        self.env.comm.clock.time - started)
        if self.trace is not None:
            self.trace.emit(self.env, "phase", "partial_reduce:end",
                            records=len(out))
        if self.profile is not None:
            self.profile.annotate_last(spilled_bytes=out.spilled_bytes)
        return out

    # ------------------------------------------------------ conveniences

    def sort_local(self, kvc: KVContainer, *, by_value: bool = False,
                   key_fn: Callable[[bytes, bytes], Any] | None = None,
                   out_tag: str = "kv_sorted",
                   consume: bool = True) -> KVContainer:
        """Sort a rank-local KVC by key (or value); consumes the input
        unless ``consume=False``.

        ``key_fn(key, value)`` overrides the sort key (e.g. decode a
        little-endian id whose byte order is not its numeric order).
        Rank-local, like MR-MPI's ``sort_keys``: the global order is
        the concatenation of per-rank sorted runs.
        """
        if key_fn is not None:
            sort_key = lambda kv: key_fn(kv[0], kv[1])  # noqa: E731
        elif by_value:
            sort_key = lambda kv: kv[1]  # noqa: E731
        else:
            sort_key = lambda kv: kv[0]  # noqa: E731
        records = sorted(kvc.consume() if consume else kvc.records(),
                         key=sort_key)
        out = KVContainer(self.env.tracker, kvc.layout,
                          self.config.page_size, tag=out_tag)
        for key, value in records:
            out.add(key, value)
        self.env.charge_compute(out.nbytes)
        return out

    def global_sort(self, kvc: KVContainer, *, by_value: bool = False,
                    batch: bool = False,
                    out_tag: str = "kv_gsorted") -> KVContainer:
        """Total order across ranks via sample sort (consumes input).

        After this call, every record on rank ``r`` sorts at or before
        every record on rank ``r+1``, and each rank is locally sorted.
        ``batch=True`` routes records through the columnar batch path
        (identical splitters, identical output).
        """
        from repro.core.sort import global_sort

        return global_sort(self.env, kvc, self.config, by_value=by_value,
                           batch=batch, out_tag=out_tag)

    def gather(self, kvc: KVContainer, nranks: int = 1,
               out_tag: str = "kv_gathered") -> KVContainer:
        """Move all KVs onto the lowest ``nranks`` ranks (consumes input)."""
        if not 1 <= nranks <= self.env.comm.size:
            raise ValueError(
                f"nranks must be in 1..{self.env.comm.size}, got {nranks}")
        from repro.core.shuffle import default_partitioner

        return self.map_kvs(
            kvc, lambda ctx, k, v: ctx.emit(k, v),
            partitioner=lambda key, p: default_partitioner(key, nranks),
            layout=kvc.layout, out_tag=out_tag)

    # -------------------------------------------------------------- sinks

    def _rendered_pages(self, kvc: KVContainer, render):
        """Rendered output, one ``bytes`` chunk per container page.

        Streaming alternative to one whole-output ``b"".join``, which
        would hold the entire rendered payload next to the container
        and double the peak on large outputs.
        """
        for batch in kvc.batches():
            yield b"".join(render(k, v) for k, v in batch.pairs_bytes())

    def write_output(self, kvc: KVContainer, path: str,
                     render: Callable[[bytes, bytes], bytes] | None = None,
                     ) -> None:
        """Persist a rank's output KVs to ``<path>.<rank>`` on the PFS.

        Output is rendered and written page by page, so peak memory
        stays one page of rendered payload above the container itself.
        """
        if render is None:
            render = lambda k, v: k + b"\t" + v + b"\n"  # noqa: E731
        target = f"{path}.{self.env.comm.rank}"
        wrote = False
        for chunk in self._rendered_pages(kvc, render):
            if not wrote:
                self.env.pfs.write(self.env.comm, target, chunk)
                wrote = True
            else:
                self.env.pfs.append(self.env.comm, target, chunk)
        if not wrote:
            self.env.pfs.write(self.env.comm, target, b"")

    def write_output_global(self, kvc: KVContainer, path: str,
                            render: Callable[[bytes, bytes], bytes] | None
                            = None) -> None:
        """Persist all ranks' outputs to ONE shared PFS file.

        Collective: rank offsets come from an exclusive prefix sum of
        the rendered sizes (MPI-IO style), so the file's contents are
        rank 0's records, then rank 1's, and so on - combined with
        :meth:`global_sort` this produces one globally sorted file.
        Rendering runs twice (a sizing pass, then page-sized writes at
        advancing offsets) instead of joining the whole payload in
        memory; ``render`` must therefore be deterministic.
        """
        if render is None:
            render = lambda k, v: k + b"\t" + v + b"\n"  # noqa: E731
        nbytes = sum(len(chunk) for chunk in self._rendered_pages(kvc, render))
        offset = self.env.comm.exscan(nbytes)
        if nbytes == 0:
            self.env.pfs.write_at(self.env.comm, path, offset, b"")
        else:
            for chunk in self._rendered_pages(kvc, render):
                self.env.pfs.write_at(self.env.comm, path, offset, chunk)
                offset += len(chunk)
        self.env.comm.barrier()  # file complete once anyone returns

    def collect(self, kvc: KVContainer) -> list[tuple[bytes, bytes]]:
        """This rank's records as a list (small results / tests)."""
        return list(kvc.records())
