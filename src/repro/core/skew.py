"""Skew-tolerant folding: split hot keys across ranks.

The paper's weak-scaling failures (Figures 10 and 14) all trace to one
mechanism: a hash partitioner sends *every* occurrence of a key to one
rank, so a few dominant keys concentrate memory and work no matter how
many nodes are added.  The Mimir authors' follow-up work attacks this
with key splitting; this module implements that idea for
commutative/associative folds:

1. a sampling pass over the map output identifies globally hot keys
   (an allreduce of local top candidates);
2. hot keys are *salted* - each occurrence is routed to one of
   ``nsplits`` ranks by appending a salt byte derived from the source
   rank - so their volume spreads evenly;
3. each rank folds its salted share (partial results);
4. a second, tiny shuffle merges the per-salt partials on the true
   owner rank and strips the salt.

Cold keys take the normal single-stage path unchanged.  The result is
identical to a plain fold (requires fold invariance, like partial
reduction); only the distribution of memory and work changes.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cluster import RankEnv
from repro.core.bucket import CountingBucket
from repro.core.config import MimirConfig
from repro.core.kvcontainer import KVContainer
from repro.core.partial_reduction import PartialReduceFn
from repro.core.shuffle import default_partitioner

#: Salt marker prepended to split keys during stage one.  Record
#: layouts are length-aware, so the marker cannot collide with user
#: keys once stripped symmetrically.
_SALT = b"\x01"
_PLAIN = b"\x00"


def find_hot_keys(env: RankEnv, sample: Iterable[tuple[bytes, int]], *,
                  max_hot: int = 8,
                  hot_fraction: float = 0.05) -> set[bytes]:
    """Agree on globally hot keys from per-rank ``(key, count)`` samples.

    A key is hot when it accounts for at least ``hot_fraction`` of all
    sampled records.  Every rank receives the same set.
    """
    local = dict(sample)
    total_local = sum(local.values())
    # Only a rank's heaviest candidates travel (control-plane traffic).
    candidates = sorted(local.items(), key=lambda kv: -kv[1])[: 4 * max_hot]
    gathered = env.comm.allgather(candidates)
    totals: dict[bytes, int] = {}
    for part in gathered:
        for key, count in part:
            totals[key] = totals.get(key, 0) + count
    grand_total = env.comm.allsum(total_local)
    if grand_total == 0:
        return set()
    hot = [key for key, count in totals.items()
           if count / grand_total >= hot_fraction]
    hot.sort(key=lambda key: -totals[key])
    return set(hot[:max_hot])


def fold_by_key(env: RankEnv, config: MimirConfig,
                feed: Callable[[Callable[[bytes, bytes], None]], None],
                fold_fn: PartialReduceFn, *,
                hot_keys: set[bytes] | None = None,
                sample_records: int = 4096,
                max_hot: int = 8,
                hot_fraction: float = 0.05,
                out_tag: str = "kv_folded") -> KVContainer:
    """Skew-tolerant fold of ``feed``'s emissions; returns owner-local KVs.

    ``feed(emit)`` must be callable twice (the sampling pass re-reads a
    prefix of the input); ``fold_fn`` must be commutative/associative.
    When ``hot_keys`` is None they are discovered by sampling.
    """
    from repro.core.job import Mimir

    comm = env.comm
    mimir = Mimir(env, config)

    # ---------------------------------------------------- sampling pass
    if hot_keys is None:
        counts = CountingBucket(env.tracker, config.bucket_entry_overhead,
                                tag="skew_sample")
        seen = 0

        class _Stop(Exception):
            pass

        def sample_emit(key: bytes, value: bytes) -> None:
            nonlocal seen
            counts.add(key, 0)
            seen += 1
            if seen >= sample_records:
                raise _Stop

        try:
            feed(sample_emit)
        except _Stop:
            pass
        hot_keys = find_hot_keys(
            env, ((key, entry[0]) for key, entry in counts.items()),
            max_hot=max_hot, hot_fraction=hot_fraction)
        counts.free()

    # ------------------------------------------- stage 1: salted shuffle
    nsplits = comm.size
    my_salt = bytes([comm.rank % 251])

    def stage1_partitioner(key: bytes, nprocs: int) -> int:
        if key[:1] == _SALT:
            # Salted hot key: spread by the salt byte.
            return key[1] % nprocs
        return default_partitioner(key[1:], nprocs)

    def stage1_map(ctx, _item) -> None:
        def emit(key: bytes, value: bytes) -> None:
            if key in hot_keys:
                ctx.emit(_SALT + my_salt + key, value)
            else:
                ctx.emit(_PLAIN + key, value)

        feed(emit)

    salted_fold = lambda key, a, b: fold_fn(key, a, b)  # noqa: E731
    kvs = mimir.map_items([None], stage1_map,
                          partitioner=stage1_partitioner)
    partials = mimir.partial_reduce(kvs, salted_fold, out_tag="kv_partials")

    # --------------------------------------- stage 2: merge the partials
    def stage2_partitioner(key: bytes, nprocs: int) -> int:
        return default_partitioner(key, nprocs)

    def stage2_map(ctx, key: bytes, value: bytes) -> None:
        if key[:1] == _SALT:
            ctx.emit(key[2:], value)  # strip marker + salt byte
        else:
            ctx.emit(key[1:], value)

    merged = mimir.map_kvs(partials, stage2_map,
                           partitioner=stage2_partitioner)
    return mimir.partial_reduce(merged, fold_fn, out_tag=out_tag)
