"""Two-pass KV-to-KMV conversion (paper Section III-A, Figure 5).

Pass one scans the KVC and gathers, per unique key, the value count and
total value bytes in a hash bucket; that is enough to lay out every KMV
record at its exact final position.  Pass two re-scans the KVC -
destructively, freeing KV pages as they drain - and copies each value
into its reserved slot.  The KMVC therefore grows while the KVC
shrinks, instead of both being held in full as MR-MPI does.
"""

from __future__ import annotations

from typing import Iterator

from repro.cluster import RankEnv
from repro.core.bucket import CountingBucket
from repro.core.config import MimirConfig
from repro.core.kmvcontainer import KMVContainer
from repro.core.kvcontainer import KVContainer


def convert_to_kmv(env: RankEnv, kvc: KVContainer, config: MimirConfig,
                   tag: str = "kmvc") -> KMVContainer:
    """Convert ``kvc`` (consumed) into a new KMV container."""
    sizes = CountingBucket(env.tracker, config.bucket_entry_overhead)

    # Pass 1: gather per-key sizes.
    scanned = 0
    for key, value in kvc.records():
        sizes.add(key, len(value))
        scanned += len(key) + len(value)

    # Lay out one exactly sized slot per unique key, in first-seen order.
    kmvc = KMVContainer(env.tracker, kvc.layout, config.page_size, tag=tag)
    slots: dict[bytes, int] = {
        key: kmvc.reserve(key, count, total)
        for key, (count, total) in sizes.items()
    }

    # Pass 2: fill values while releasing KV pages.
    for key, value in kvc.consume():
        kmvc.append_value(slots[key], value)
    kmvc.finish_fill()

    sizes.free()
    env.charge_compute(2 * scanned)
    return kmvc


def iter_grouped(env: RankEnv, kvc: KVContainer, config: MimirConfig,
                 ) -> "Iterator[tuple[bytes, list[bytes]]]":
    """Stream ``(key, values)`` groups of ``kvc`` (consumed).

    The in-memory path materialises a KMV container (the paper's
    convert) and drains it.  With ``config.out_of_core`` and a KV set
    too large to group in memory, the out-of-core path is used instead:
    KVs are hash-partitioned into PFS runs sized to the remaining
    memory budget and each partition is grouped and yielded on its own,
    so the full KMV never exists at once.
    """
    if config.out_of_core and _needs_partitioned_convert(env, kvc):
        for groups in _iter_partition_dicts(env, kvc, config):
            yield from groups.items()
        return
    kmvc = convert_to_kmv(env, kvc, config)
    yield from kmvc.consume()


def iter_grouped_batches(env: RankEnv, kvc: KVContainer, config: MimirConfig,
                         ) -> "Iterator[list[tuple[bytes, list[bytes]]]]":
    """Batch variant of :func:`iter_grouped`: one group-list per KMV
    page (or per out-of-core partition), same groups in the same order.
    """
    if config.out_of_core and _needs_partitioned_convert(env, kvc):
        for groups in _iter_partition_dicts(env, kvc, config):
            yield list(groups.items())
        return
    kmvc = convert_to_kmv(env, kvc, config)
    yield from kmvc.consume_batches()


def _needs_partitioned_convert(env: RankEnv, kvc: KVContainer) -> bool:
    """Whether grouping in memory would blow the rank's budget."""
    if kvc.spilled:
        return True
    available = env.tracker.available
    if available is None:
        return False
    # Rough projection: the KMV is about the KV payload plus bucket
    # bookkeeping; require comfortable headroom.
    return kvc.nbytes * 2 > available


def _iter_partition_dicts(env: RankEnv, kvc: KVContainer,
                          config: MimirConfig,
                          ) -> "Iterator[dict[bytes, list[bytes]]]":
    import zlib

    from repro.io.spill import SpillWriter

    available = env.tracker.available
    budget = max(config.page_size,
                 (available // 4) if available is not None
                 else kvc.nbytes or config.page_size)
    npart = max(1, -(-max(kvc.nbytes, 1) // budget))

    # Per-job spill redirection (MimirConfig.storage) applies to the
    # partitioned-convert scratch files, same as container spill.
    store = env.storage_for(config.storage) if config.storage else env.pfs
    writers = [SpillWriter(store, env.comm, f"cvt_{kvc.tag}_part{i}")
               for i in range(npart)]
    staging: list[bytearray] = [bytearray() for _ in range(npart)]
    layout = kvc.layout
    scanned = 0
    for key, value in kvc.consume():
        scanned += len(key) + len(value)
        part = zlib.crc32(key) % npart
        staging[part] += layout.encode(key, value)
        if len(staging[part]) >= config.page_size:
            writers[part].write_chunk(staging[part])
            staging[part] = bytearray()
    for part, buf in enumerate(staging):
        if buf:
            writers[part].write_chunk(buf)
    env.charge_compute(scanned)

    for writer in writers:
        groups: dict[bytes, list[bytes]] = {}
        grouped_bytes = 0
        for chunk in writer.reader():
            for key, value in layout.iter_records(chunk):
                groups.setdefault(key, []).append(value)
                grouped_bytes += len(key) + len(value)
        # The partition's working set is charged while it is live.
        env.tracker.allocate(grouped_bytes, "convert_partition")
        try:
            yield groups
        finally:
            env.tracker.free(grouped_bytes, "convert_partition")
            writer.discard()
        env.charge_compute(grouped_bytes)
