"""The KV container (KVC): Mimir's dynamically sized KV store.

A KVC manages a collection of KV records across one or more fixed-size
pages (paper Section III).  Unlike MR-MPI's statically allocated page
set, a KVC grows page-by-page as records are inserted and *frees pages
as they are consumed*, which is the central memory-efficiency mechanism
of the design.

Optionally a KVC can be *spill-backed* (the out-of-core capability the
paper's authors added after publication): given a spill sink, a
container that cannot acquire another page within its rank's memory
budget writes its oldest full pages to the parallel file system and
keeps going.  Record order is preserved (spilled prefix, resident
suffix) and readers stream the spilled chunks back at PFS cost.

With a :mod:`~repro.core.codec` attached, every page that fills is
*frozen*: compressed into an immutable segment charged to the tracker
at its exact encoded size (immutable variable-size blobs are
fragmentation-safe, like the KMVC's jumbo pages).  Only the live tail
page stays uncompressed, so the resident footprint of a skewed stream
shrinks by roughly the compression ratio - the paper's Figs. 11-12
memory win.  Frozen segments spill and stream back through the same
out-of-core machinery, already encoded.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Iterator

from repro.core.batch import KVBatch
from repro.core.errors import RecordTooLargeError
from repro.core.records import KVLayout
from repro.memory.pages import Page, PagePool
from repro.memory.tracker import MemoryTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import RankEnv
    from repro.core.codec import Codec


class _FrozenSegment:
    """One filled page, codec-framed and charged at its exact size."""

    __slots__ = ("payload", "raw_len")

    def __init__(self, payload: bytes, raw_len: int):
        self.payload = payload
        self.raw_len = raw_len


class KVContainer:
    """An ordered multiset of KV records stored in pool pages."""

    #: Class-level counter so spill files of unnamed containers differ.
    _spill_seq = 0

    def __init__(self, tracker: MemoryTracker, layout: KVLayout | None = None,
                 page_size: int = 64 * 1024, tag: str = "kvc", *,
                 spill_env: "RankEnv | None" = None,
                 spill_store=None,
                 resident_page_budget: int | None = None,
                 codec: "Codec | None" = None,
                 codec_env: "RankEnv | None" = None):
        self.layout = layout or KVLayout()
        self.pool = PagePool(tracker, page_size, tag=tag)
        self.pages: list[Page] = []
        #: Codec-frozen full pages, between the spilled prefix and the
        #: live tail page(s) in record order.
        self._frozen: list[_FrozenSegment] = []
        self.nrecords = 0
        self.nbytes = 0  # payload bytes (not page capacity)
        self.tag = tag
        self._spill_env = spill_env
        #: Storage backend spill pages land on; ``None`` means the spill
        #: env's own substrate.  ``MimirConfig.storage`` redirects a
        #: job's spill here (see :meth:`repro.cluster.RankEnv.
        #: storage_for`).
        self._spill_store = spill_store
        self._resident_budget = resident_page_budget
        self._spill_writer = None
        self._codec = codec
        #: Environment charged for codec compute and metrics; falls
        #: back to the spill env so out-of-core containers need no
        #: extra wiring.
        self._codec_env = codec_env or spill_env
        #: Pin count: while positive, destructive operations
        #: (``consume`` / ``free``) are refused.  The intermediate
        #: cache (:mod:`repro.sched.cache`) pins containers that a
        #: downstream stage is reading so eviction cannot pull pages
        #: out from under a live iterator.
        self.pins = 0

    # ------------------------------------------------------------- insert

    def _tail_page(self, needed: int) -> Page:
        if needed > self.pool.page_size:
            raise RecordTooLargeError(needed, self.pool.page_size,
                                      f"KVC page ({self.tag})")
        if not self.pages or self.pages[-1].remaining < needed:
            if self._codec is not None and self.pages:
                self._freeze_tail()
            if self._spill_env is not None:
                self._make_room()
            self.pages.append(self.pool.acquire())
        return self.pages[-1]

    # --------------------------------------------------------- compression

    def _freeze_tail(self) -> None:
        """Compress the filled tail page into an immutable segment."""
        page = self.pages.pop()
        raw_len = page.used
        frame = self._codec.encode_frame(bytes(page.view))
        env = self._codec_env
        if env is not None:
            from repro.core.codec import note_encode

            note_encode(env.metrics, raw_len, len(frame))
            env.charge_compute(raw_len)
        # Charge the segment before releasing the page: if the tracker
        # refuses, the container is still intact with the page live.
        self.pool.tracker.allocate(len(frame), self.tag)
        self._frozen.append(_FrozenSegment(frame, raw_len))
        self.pool.release(page)

    def _thaw(self, segment: _FrozenSegment) -> bytes:
        raw = self._codec.decode_frame(segment.payload)
        env = self._codec_env
        if env is not None:
            env.charge_compute(segment.raw_len)
        return raw

    # -------------------------------------------------------- out-of-core

    def _over_budget(self) -> bool:
        return (self._resident_budget is not None and
                len(self._frozen) + len(self.pages) >= self._resident_budget)

    def _make_room(self) -> None:
        """Spill oldest resident data until one more page fits the budget.

        While the container is pinned, spilling is refused outright: a
        pinned container has live readers iterating its pages, and
        popping the front page would pull records out from under them.
        The resident budget is advisory; the hard memory limit stays
        enforced by the tracker at ``acquire`` time.
        """
        if self.pins:
            return
        while (self._frozen or self.pages) and \
                (self._over_budget() or not self.pool.would_fit()):
            self._spill_front()

    def _spill_front(self) -> None:
        from repro.io.spill import SpillWriter

        env = self._spill_env
        assert env is not None
        if self._spill_writer is None:
            KVContainer._spill_seq += 1
            store = self._spill_store if self._spill_store is not None \
                else env.pfs
            self._spill_writer = SpillWriter(
                store, env.comm, f"kvc_{self.tag}_{KVContainer._spill_seq}",
                codec=self._codec)
        if self._frozen:
            segment = self._frozen.pop(0)
            self._spill_writer.write_encoded(segment.payload)
            self.pool.tracker.free(len(segment.payload), self.tag)
        else:
            page = self.pages.pop(0)
            self._spill_writer.write_chunk(page.view)
            self.pool.release(page)

    @property
    def spilled(self) -> bool:
        return self._spill_writer is not None and \
            self._spill_writer.nchunks > 0

    @property
    def spilled_bytes(self) -> int:
        return self._spill_writer.total_bytes if self._spill_writer else 0

    def add(self, key: bytes, value: bytes) -> None:
        """Encode and append one record."""
        record = self.layout.encode(key, value)
        self.add_record_bytes(record)

    def add_record_bytes(self, record: bytes) -> None:
        """Append one pre-encoded record."""
        page = self._tail_page(len(record))
        page.write(record)
        self.nrecords += 1
        self.nbytes += len(record)

    def extend_encoded(self, buf: bytes | memoryview) -> int:
        """Append a packed run of records (e.g. one received shuffle part).

        One boundary scan plus bulk page-sized copies: records are
        re-split at page boundaries exactly as per-record insertion
        would (a record never straddles two pages), without decoding or
        re-encoding anything.  Returns the number of records added.
        """
        if isinstance(buf, memoryview):
            buf = bytes(buf)
        roff = self.layout.scan(buf)[0]
        n = len(roff) - 1
        if n <= 0:
            return 0
        view = memoryview(buf)
        i = 0
        while i < n:
            page = self._tail_page(roff[i + 1] - roff[i])
            # Largest j with roff[j] - roff[i] <= the page's free space:
            # every record i..j-1 lands on this page in one copy.
            j = bisect_right(roff, roff[i] + page.remaining, i + 1, n + 1) - 1
            page.write(view[roff[i] : roff[j]])
            i = j
        self.nrecords += n
        self.nbytes += roff[-1]
        return n

    def extend_pairs(self, pairs) -> int:
        """Append ``(key, value)`` pairs in one frame (batch rebuild)."""
        encode = self.layout.encode
        added = 0
        for key, value in pairs:
            self.add_record_bytes(encode(key, value))
            added += 1
        return added

    # ------------------------------------------------------------ iterate

    def batches(self) -> Iterator[KVBatch]:
        """Non-destructive batch iteration: one :class:`KVBatch` per
        spilled chunk, frozen segment, or resident page, in record
        order.  Each batch is valid until the iterator advances."""
        if self._spill_writer is not None:
            for chunk in self._spill_writer.reader():
                yield KVBatch(chunk, self.layout)
        for segment in self._frozen:
            yield KVBatch(self._thaw(segment), self.layout)
        for page in self.pages:
            yield KVBatch(page.data, self.layout, page.used)

    def records(self) -> Iterator[tuple[bytes, bytes]]:
        """Non-destructive iteration over all records.

        Spilled pages (oldest data) stream back first at PFS read cost,
        preserving insertion order.  Compatibility shim over
        :meth:`batches`.
        """
        for batch in self.batches():
            yield from batch.pairs_bytes()

    def consume_batches(self) -> Iterator[KVBatch]:
        """Destructive batch iteration: backing storage is freed as
        each batch is left behind.  Refused while pinned."""
        if self.pins:
            raise RuntimeError(
                f"cannot consume pinned container {self.tag!r} "
                f"({self.pins} pins held)")
        return self._consume_batches()

    def _consume_batches(self) -> Iterator[KVBatch]:
        if self._spill_writer is not None:
            reader = self._spill_writer.reader()
            try:
                for chunk in reader:
                    yield KVBatch(chunk, self.layout)
            finally:
                self._spill_writer.discard()
                self._spill_writer = None
        while self._frozen:
            segment = self._frozen.pop(0)
            try:
                yield KVBatch(self._thaw(segment), self.layout)
            finally:
                self.pool.tracker.free(len(segment.payload), self.tag)
        while self.pages:
            page = self.pages.pop(0)
            try:
                yield KVBatch(page.data, self.layout, page.used)
            finally:
                consumed_bytes = page.used
                self.pool.release(page)
                self.nbytes = max(0, self.nbytes - consumed_bytes)
        self.nrecords = 0
        self.nbytes = 0

    def consume(self) -> Iterator[tuple[bytes, bytes]]:
        """Destructive iteration: each page is freed once fully read.

        This is what lets Mimir's convert/reduce pipeline shrink the KV
        footprint while the KMV footprint grows, instead of holding
        both in full.  Refused while the container is pinned.
        """
        if self.pins:
            raise RuntimeError(
                f"cannot consume pinned container {self.tag!r} "
                f"({self.pins} pins held)")
        return self._consume()

    def _consume(self) -> Iterator[tuple[bytes, bytes]]:
        for batch in self._consume_batches():
            yield from batch.pairs_bytes()

    # ------------------------------------------------------------- manage

    def pin(self) -> None:
        """Protect the container from ``consume``/``free`` (refcounted)."""
        self.pins += 1

    def unpin(self) -> None:
        if self.pins <= 0:
            raise ValueError(f"unpin without matching pin on {self.tag!r}")
        self.pins -= 1

    def free(self) -> None:
        """Release every page and any spill file.  Refused while pinned."""
        if self.pins:
            raise RuntimeError(
                f"cannot free pinned container {self.tag!r} "
                f"({self.pins} pins held)")
        while self.pages:
            self.pool.release(self.pages.pop())
        while self._frozen:
            segment = self._frozen.pop()
            self.pool.tracker.free(len(segment.payload), self.tag)
        if self._spill_writer is not None:
            self._spill_writer.discard()
            self._spill_writer = None
        self.nrecords = 0
        self.nbytes = 0

    @property
    def memory_bytes(self) -> int:
        """Bytes of page capacity plus frozen-segment bytes held."""
        return len(self.pages) * self.pool.page_size + \
            sum(len(s.payload) for s in self._frozen)

    @property
    def npages(self) -> int:
        """Resident storage units (live pages plus frozen segments)."""
        return len(self.pages) + len(self._frozen)

    def __len__(self) -> int:
        return self.nrecords

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KVContainer(nrecords={self.nrecords}, nbytes={self.nbytes}, "
                f"pages={len(self.pages)}x{self.pool.page_size}, "
                f"frozen={len(self._frozen)})")
