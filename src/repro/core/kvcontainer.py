"""The KV container (KVC): Mimir's dynamically sized KV store.

A KVC manages a collection of KV records across one or more fixed-size
pages (paper Section III).  Unlike MR-MPI's statically allocated page
set, a KVC grows page-by-page as records are inserted and *frees pages
as they are consumed*, which is the central memory-efficiency mechanism
of the design.

Optionally a KVC can be *spill-backed* (the out-of-core capability the
paper's authors added after publication): given a spill sink, a
container that cannot acquire another page within its rank's memory
budget writes its oldest full pages to the parallel file system and
keeps going.  Record order is preserved (spilled prefix, resident
suffix) and readers stream the spilled chunks back at PFS cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.errors import RecordTooLargeError
from repro.core.records import KVLayout
from repro.memory.pages import Page, PagePool
from repro.memory.tracker import MemoryTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import RankEnv


class KVContainer:
    """An ordered multiset of KV records stored in pool pages."""

    #: Class-level counter so spill files of unnamed containers differ.
    _spill_seq = 0

    def __init__(self, tracker: MemoryTracker, layout: KVLayout | None = None,
                 page_size: int = 64 * 1024, tag: str = "kvc", *,
                 spill_env: "RankEnv | None" = None,
                 resident_page_budget: int | None = None):
        self.layout = layout or KVLayout()
        self.pool = PagePool(tracker, page_size, tag=tag)
        self.pages: list[Page] = []
        self.nrecords = 0
        self.nbytes = 0  # payload bytes (not page capacity)
        self.tag = tag
        self._spill_env = spill_env
        self._resident_budget = resident_page_budget
        self._spill_writer = None
        #: Pin count: while positive, destructive operations
        #: (``consume`` / ``free``) are refused.  The intermediate
        #: cache (:mod:`repro.sched.cache`) pins containers that a
        #: downstream stage is reading so eviction cannot pull pages
        #: out from under a live iterator.
        self.pins = 0

    # ------------------------------------------------------------- insert

    def _tail_page(self, needed: int) -> Page:
        if needed > self.pool.page_size:
            raise RecordTooLargeError(needed, self.pool.page_size,
                                      f"KVC page ({self.tag})")
        if not self.pages or self.pages[-1].remaining < needed:
            if self._spill_env is not None:
                self._make_room()
            self.pages.append(self.pool.acquire())
        return self.pages[-1]

    # -------------------------------------------------------- out-of-core

    def _make_room(self) -> None:
        """Spill oldest pages until one more page fits the budget."""
        over_budget = (self._resident_budget is not None and
                       len(self.pages) >= self._resident_budget)
        while self.pages and (over_budget or not self.pool.would_fit()):
            self._spill_front_page()
            over_budget = (self._resident_budget is not None and
                           len(self.pages) >= self._resident_budget)

    def _spill_front_page(self) -> None:
        from repro.io.spill import SpillWriter

        env = self._spill_env
        assert env is not None
        if self._spill_writer is None:
            KVContainer._spill_seq += 1
            self._spill_writer = SpillWriter(
                env.pfs, env.comm, f"kvc_{self.tag}_{KVContainer._spill_seq}")
        page = self.pages.pop(0)
        self._spill_writer.write_chunk(page.view)
        self.pool.release(page)

    @property
    def spilled(self) -> bool:
        return self._spill_writer is not None and \
            self._spill_writer.nchunks > 0

    @property
    def spilled_bytes(self) -> int:
        return self._spill_writer.total_bytes if self._spill_writer else 0

    def add(self, key: bytes, value: bytes) -> None:
        """Encode and append one record."""
        record = self.layout.encode(key, value)
        self.add_record_bytes(record)

    def add_record_bytes(self, record: bytes) -> None:
        """Append one pre-encoded record."""
        page = self._tail_page(len(record))
        page.write(record)
        self.nrecords += 1
        self.nbytes += len(record)

    def extend_encoded(self, buf: bytes | memoryview) -> int:
        """Append a packed run of records (e.g. one received shuffle part).

        Records are re-split at page boundaries, so a record never
        straddles two pages.  Returns the number of records added.
        """
        if isinstance(buf, memoryview):
            buf = bytes(buf)
        added = 0
        offset = 0
        end = len(buf)
        layout = self.layout
        while offset < end:
            _key, _value, next_offset = layout.decode(buf, offset)
            self.add_record_bytes(buf[offset:next_offset])
            offset = next_offset
            added += 1
        return added

    # ------------------------------------------------------------ iterate

    def records(self) -> Iterator[tuple[bytes, bytes]]:
        """Non-destructive iteration over all records.

        Spilled pages (oldest data) stream back first at PFS read cost,
        preserving insertion order.
        """
        if self._spill_writer is not None:
            for chunk in self._spill_writer.reader():
                yield from self.layout.iter_records(chunk)
        for page in self.pages:
            yield from self.layout.iter_records(page.view)

    def consume(self) -> Iterator[tuple[bytes, bytes]]:
        """Destructive iteration: each page is freed once fully read.

        This is what lets Mimir's convert/reduce pipeline shrink the KV
        footprint while the KMV footprint grows, instead of holding
        both in full.  Refused while the container is pinned.
        """
        if self.pins:
            raise RuntimeError(
                f"cannot consume pinned container {self.tag!r} "
                f"({self.pins} pins held)")
        return self._consume()

    def _consume(self) -> Iterator[tuple[bytes, bytes]]:
        if self._spill_writer is not None:
            reader = self._spill_writer.reader()
            try:
                for chunk in reader:
                    yield from self.layout.iter_records(chunk)
            finally:
                self._spill_writer.discard()
                self._spill_writer = None
        while self.pages:
            page = self.pages.pop(0)
            try:
                yield from self.layout.iter_records(page.view)
            finally:
                consumed_bytes = page.used
                self.pool.release(page)
                self.nbytes -= consumed_bytes
        self.nrecords = 0
        self.nbytes = 0

    # ------------------------------------------------------------- manage

    def pin(self) -> None:
        """Protect the container from ``consume``/``free`` (refcounted)."""
        self.pins += 1

    def unpin(self) -> None:
        if self.pins <= 0:
            raise ValueError(f"unpin without matching pin on {self.tag!r}")
        self.pins -= 1

    def free(self) -> None:
        """Release every page and any spill file.  Refused while pinned."""
        if self.pins:
            raise RuntimeError(
                f"cannot free pinned container {self.tag!r} "
                f"({self.pins} pins held)")
        while self.pages:
            self.pool.release(self.pages.pop())
        if self._spill_writer is not None:
            self._spill_writer.discard()
            self._spill_writer = None
        self.nrecords = 0
        self.nbytes = 0

    @property
    def memory_bytes(self) -> int:
        """Bytes of page capacity currently held."""
        return len(self.pages) * self.pool.page_size

    @property
    def npages(self) -> int:
        return len(self.pages)

    def __len__(self) -> int:
        return self.nrecords

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KVContainer(nrecords={self.nrecords}, nbytes={self.nbytes}, "
                f"pages={len(self.pages)}x{self.pool.page_size})")
