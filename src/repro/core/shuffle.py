"""Interleaved map + aggregate: Mimir's implicit shuffle.

The send buffer is one statically allocated block divided into ``p``
equal partitions, one per destination rank.  The user-defined map
callback inserts KVs *directly* into the partition chosen by hashing
the key - there is no staging copy (paper Section III-B).  When a
partition fills, the map phase is suspended and all ranks run one
``MPI_Alltoallv`` round; received records flow into the output KVC and
the map resumes.  Because each sender contributes at most one partition
(``comm_buffer_size / p`` bytes) per destination per round, the total
received per round can never exceed one send buffer - so the receive
buffer is the same size as the send buffer, never larger (the paper's
"unexpected side benefit").

Termination: ranks that exhaust their input keep participating in
exchange rounds with empty partitions; after every round an allreduce
of done-flags decides whether the aggregate phase is over.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.cluster import RankEnv
from repro.core.batch import KVBatch
from repro.core.codec import get_codec, note_encode
from repro.core.config import MimirConfig
from repro.core.errors import RecordTooLargeError
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout


def default_partitioner(key: bytes, nprocs: int) -> int:
    """Stable key-to-rank hash (crc32: deterministic across processes)."""
    return zlib.crc32(key) % nprocs


class Shuffler:
    """One map/aggregate phase's communication state for one rank."""

    def __init__(self, env: RankEnv, config: MimirConfig,
                 out_kvc: KVContainer,
                 partitioner: Callable[[bytes, int], int] | None = None,
                 trace=None):
        self.env = env
        self.config = config
        self.out_kvc = out_kvc
        self.trace = trace
        self.layout: KVLayout = out_kvc.layout
        self.partitioner = partitioner or default_partitioner
        self.nprocs = env.comm.size
        self.part_size = config.partition_size(self.nprocs)

        # Statically allocated, equally sized send and receive buffers.
        env.tracker.allocate(config.comm_buffer_size, "send_buffer")
        env.tracker.allocate(config.comm_buffer_size, "recv_buffer")
        self._send = bytearray(config.comm_buffer_size)
        self._fill = [0] * self.nprocs  # bytes used per partition
        self.codec = get_codec(config.codec, self.layout)
        self.rounds = 0
        self.records_sent = 0
        self.bytes_sent = 0
        #: Framework dispatches performed (one per emit call, whether
        #: that call carried one record or a whole batch); charged by
        #: the driver through :meth:`RankEnv.charge_ops`.
        self.ops = 0
        #: Records and calls that arrived through the batch emits.
        self.batch_records = 0
        self.batch_calls = 0
        self._closed = False

    # -------------------------------------------------------------- emit

    def emit(self, key: bytes, value: bytes) -> None:
        """Insert one KV directly into its destination partition.

        Zero staging copy: the record is encoded in place inside the
        send-buffer partition (paper Section III-B).
        """
        n = self.layout.encoded_size(key, value)
        dest = self.partitioner(key, self.nprocs)
        if n > self.part_size:
            raise RecordTooLargeError(n, self.part_size,
                                      "send-buffer partition")
        if self._fill[dest] + n > self.part_size:
            self.exchange(done=False)
        base = dest * self.part_size + self._fill[dest]
        self.layout.encode_into(self._send, base, key, value)
        self._fill[dest] += n
        self.records_sent += 1
        self.bytes_sent += n
        self.ops += 1

    def emit_record(self, record: bytes | memoryview, dest: int) -> None:
        """Insert a pre-encoded record bound for rank ``dest``."""
        self._put_record(record, dest)
        self.ops += 1

    def _put_record(self, record: bytes | memoryview, dest: int) -> None:
        n = len(record)
        if n > self.part_size:
            raise RecordTooLargeError(n, self.part_size,
                                      "send-buffer partition")
        if self._fill[dest] + n > self.part_size:
            # Partition full: suspend map, run one aggregate round.
            self.exchange(done=False)
        base = dest * self.part_size + self._fill[dest]
        self._send[base : base + n] = record
        self._fill[dest] += n
        self.records_sent += 1
        self.bytes_sent += n

    # -------------------------------------------------------- batch emits
    #
    # One framework dispatch (one ``ops``) per *call* instead of per
    # record.  Partition fills, exchange trigger points, and the
    # resulting byte streams are identical to repeated single emits.

    def emit_run(self, keys, value: bytes) -> None:
        """Emit ``(key, value)`` for every key of a batch, same value."""
        layout = self.layout
        partitioner = self.partitioner
        nprocs = self.nprocs
        part_size = self.part_size
        fill = self._fill
        send = self._send
        count = 0
        nbytes = 0
        for key in keys:
            n = layout.encoded_size(key, value)
            dest = partitioner(key, nprocs)
            if n > part_size:
                raise RecordTooLargeError(n, part_size,
                                          "send-buffer partition")
            if fill[dest] + n > part_size:
                self.exchange(done=False)
            base = dest * part_size + fill[dest]
            layout.encode_into(send, base, key, value)
            fill[dest] += n
            count += 1
            nbytes += n
        self.records_sent += count
        self.bytes_sent += nbytes
        self.ops += 1
        self.batch_records += count
        self.batch_calls += 1

    def emit_pairs(self, pairs) -> None:
        """Emit ``(key, value)`` pairs in one framework dispatch."""
        layout = self.layout
        partitioner = self.partitioner
        nprocs = self.nprocs
        part_size = self.part_size
        fill = self._fill
        send = self._send
        count = 0
        nbytes = 0
        for key, value in pairs:
            n = layout.encoded_size(key, value)
            dest = partitioner(key, nprocs)
            if n > part_size:
                raise RecordTooLargeError(n, part_size,
                                          "send-buffer partition")
            if fill[dest] + n > part_size:
                self.exchange(done=False)
            base = dest * part_size + fill[dest]
            layout.encode_into(send, base, key, value)
            fill[dest] += n
            count += 1
            nbytes += n
        self.records_sent += count
        self.bytes_sent += nbytes
        self.ops += 1
        self.batch_records += count
        self.batch_calls += 1

    def emit_batch(self, batch: KVBatch) -> None:
        """Route every record of a :class:`KVBatch` by its key hash.

        Records are copied as arena slices straight into their
        partitions - no per-record encode, no per-record bytes objects
        (the default crc32 partitioner hashes the key slice in place).
        """
        partitioner = self.partitioner
        nprocs = self.nprocs
        arena = batch.arena
        roff = batch.roff
        for i, (ks, ke) in enumerate(zip(batch.koff, batch.kend)):
            dest = partitioner(arena[ks:ke], nprocs)
            self._put_record(arena[roff[i] : roff[i + 1]], dest)
        self.ops += 1
        self.batch_records += len(batch)
        self.batch_calls += 1

    def emit_keyed_batch(self, batch: KVBatch, dest_for) -> None:
        """Route every record of a batch via ``dest_for(key_bytes)``.

        Used by the range partitioner of the global sort, whose
        splitter comparison needs orderable ``bytes`` keys.
        """
        arena = batch.arena
        roff = batch.roff
        for i, (ks, ke) in enumerate(zip(batch.koff, batch.kend)):
            dest = dest_for(bytes(arena[ks:ke]))
            self._put_record(arena[roff[i] : roff[i + 1]], dest)
        self.ops += 1
        self.batch_records += len(batch)
        self.batch_calls += 1

    # ---------------------------------------------------------- exchange

    def exchange(self, done: bool) -> bool:
        """One aggregate round; returns True when all ranks are done."""
        sends = []
        total = 0
        send_view = memoryview(self._send)
        for dest in range(self.nprocs):
            base = dest * self.part_size
            # Zero-copy: each part is a view over the live send buffer.
            # The collective engine materialises it inside the enter
            # barrier, so no joined per-rank byte string is built here.
            part = send_view[base : base + self._fill[dest]]
            total += self._fill[dest]
            if self.codec is not None and self._fill[dest]:
                frame = self.codec.encode_frame(bytes(part))
                note_encode(self.env.metrics, self._fill[dest], len(frame))
                self.env.charge_compute(self._fill[dest])
                part = frame
            sends.append(part)
        received = self.env.comm.alltoallv(sends)
        # Clear in place: the batch emits hold a local alias to this
        # list across mid-batch exchanges, so rebinding would leave
        # them counting against stale fills.
        for dest in range(self.nprocs):
            self._fill[dest] = 0
        self.rounds += 1

        recv_total = 0
        for part in received:
            if part:
                if self.codec is not None:
                    part = self.codec.decode_frame(part)
                    self.env.charge_compute(len(part))
                self.out_kvc.extend_encoded(part)
                recv_total += len(part)
        # Copying out of the send buffer and into the KVC is local work.
        self.env.charge_compute(total + recv_total)
        if self.trace is not None:
            self.trace.emit(self.env, "exchange",
                            f"round {self.rounds}",
                            sent=total, received=recv_total, done=done)
        return self.env.comm.all_true(done)

    def finish(self) -> None:
        """Input exhausted: drain and keep joining rounds until all done."""
        while not self.exchange(done=True):
            pass
        self.close()

    def close(self) -> None:
        """Free the communication buffers."""
        if not self._closed:
            self.env.tracker.free(self.config.comm_buffer_size, "send_buffer")
            self.env.tracker.free(self.config.comm_buffer_size, "recv_buffer")
            self._send = bytearray(0)
            self._closed = True
