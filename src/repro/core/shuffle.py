"""Interleaved map + aggregate: Mimir's implicit shuffle.

The send buffer is one statically allocated block divided into ``p``
equal partitions, one per destination rank.  The user-defined map
callback inserts KVs *directly* into the partition chosen by hashing
the key - there is no staging copy (paper Section III-B).  When a
partition fills, the map phase is suspended and all ranks run one
``MPI_Alltoallv`` round; received records flow into the output KVC and
the map resumes.  Because each sender contributes at most one partition
(``comm_buffer_size / p`` bytes) per destination per round, the total
received per round can never exceed one send buffer - so the receive
buffer is the same size as the send buffer, never larger (the paper's
"unexpected side benefit").

Termination: ranks that exhaust their input keep participating in
exchange rounds with empty partitions; after every round an allreduce
of done-flags decides whether the aggregate phase is over.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.cluster import RankEnv
from repro.core.config import MimirConfig
from repro.core.errors import RecordTooLargeError
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout


def default_partitioner(key: bytes, nprocs: int) -> int:
    """Stable key-to-rank hash (crc32: deterministic across processes)."""
    return zlib.crc32(key) % nprocs


class Shuffler:
    """One map/aggregate phase's communication state for one rank."""

    def __init__(self, env: RankEnv, config: MimirConfig,
                 out_kvc: KVContainer,
                 partitioner: Callable[[bytes, int], int] | None = None,
                 trace=None):
        self.env = env
        self.config = config
        self.out_kvc = out_kvc
        self.trace = trace
        self.layout: KVLayout = out_kvc.layout
        self.partitioner = partitioner or default_partitioner
        self.nprocs = env.comm.size
        self.part_size = config.partition_size(self.nprocs)

        # Statically allocated, equally sized send and receive buffers.
        env.tracker.allocate(config.comm_buffer_size, "send_buffer")
        env.tracker.allocate(config.comm_buffer_size, "recv_buffer")
        self._send = bytearray(config.comm_buffer_size)
        self._fill = [0] * self.nprocs  # bytes used per partition
        self.rounds = 0
        self.records_sent = 0
        self.bytes_sent = 0
        self._closed = False

    # -------------------------------------------------------------- emit

    def emit(self, key: bytes, value: bytes) -> None:
        """Insert one KV directly into its destination partition.

        Zero staging copy: the record is encoded in place inside the
        send-buffer partition (paper Section III-B).
        """
        n = self.layout.encoded_size(key, value)
        dest = self.partitioner(key, self.nprocs)
        if n > self.part_size:
            raise RecordTooLargeError(n, self.part_size,
                                      "send-buffer partition")
        if self._fill[dest] + n > self.part_size:
            self.exchange(done=False)
        base = dest * self.part_size + self._fill[dest]
        self.layout.encode_into(self._send, base, key, value)
        self._fill[dest] += n
        self.records_sent += 1
        self.bytes_sent += n

    def emit_record(self, record: bytes, dest: int) -> None:
        """Insert a pre-encoded record bound for rank ``dest``."""
        n = len(record)
        if n > self.part_size:
            raise RecordTooLargeError(n, self.part_size,
                                      "send-buffer partition")
        if self._fill[dest] + n > self.part_size:
            # Partition full: suspend map, run one aggregate round.
            self.exchange(done=False)
        base = dest * self.part_size + self._fill[dest]
        self._send[base : base + n] = record
        self._fill[dest] += n
        self.records_sent += 1
        self.bytes_sent += n

    # ---------------------------------------------------------- exchange

    def exchange(self, done: bool) -> bool:
        """One aggregate round; returns True when all ranks are done."""
        sends = []
        total = 0
        for dest in range(self.nprocs):
            base = dest * self.part_size
            sends.append(bytes(self._send[base : base + self._fill[dest]]))
            total += self._fill[dest]
        received = self.env.comm.alltoallv(sends)
        self._fill = [0] * self.nprocs
        self.rounds += 1

        recv_total = 0
        for part in received:
            if part:
                self.out_kvc.extend_encoded(part)
                recv_total += len(part)
        # Copying out of the send buffer and into the KVC is local work.
        self.env.charge_compute(total + recv_total)
        if self.trace is not None:
            self.trace.emit(self.env, "exchange",
                            f"round {self.rounds}",
                            sent=total, received=recv_total, done=done)
        return self.env.comm.all_true(done)

    def finish(self) -> None:
        """Input exhausted: drain and keep joining rounds until all done."""
        while not self.exchange(done=True):
            pass
        self.close()

    def close(self) -> None:
        """Free the communication buffers."""
        if not self._closed:
            self.env.tracker.free(self.config.comm_buffer_size, "send_buffer")
            self.env.tracker.free(self.config.comm_buffer_size, "recv_buffer")
            self._send = bytearray(0)
            self._closed = True
