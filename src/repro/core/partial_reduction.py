"""Partial reduction (paper Section III-C1, Figure 6).

For reduce operations with "partial-reduce invariance" (commutative and
associative merging, e.g. WordCount's sum), the convert and reduce
phases are replaced by a single streaming pass: KVs are scanned out of
the post-shuffle KVC (destructively - pages free as they drain) and
hashed into a bucket of unique KVs; on a duplicate key the user
callback folds the incoming value into the bucketed one.  No KMV is
ever materialised, so the memory high-water mark is the unique-key set
instead of the full grouped dataset.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster import RankEnv
from repro.core.bucket import AccountedBucket
from repro.core.config import MimirConfig
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout

#: ``pr_fn(key, value_a, value_b) -> value`` - same contract as a
#: combine callback: fold two values of one key into one.
PartialReduceFn = Callable[[bytes, bytes, bytes], bytes]


def partial_reduce(env: RankEnv, kvc: KVContainer, pr_fn,
                   config: MimirConfig, out_layout: KVLayout | None = None,
                   out_tag: str = "kv_out",
                   stats: dict | None = None, seed: KVContainer | None = None,
                   seed_consume: bool = True) -> KVContainer:
    """Fold ``kvc`` (consumed) into one KV per unique key.

    ``pr_fn`` is either a per-record fold (``pr_fn(key, a, b) -> value``)
    or, when marked with :func:`~repro.core.batch.batch_kernel`, a
    whole-batch fold called as ``pr_fn(bucket, batch)`` once per
    container page.  Both forms produce the same bucket contents (and
    so the same output), but the batch form costs one framework
    dispatch per page instead of one per record.

    ``seed`` pre-loads the bucket from an existing aggregate *before*
    any new record folds in, so an incremental window fold (seed = the
    running aggregate, ``kvc`` = the new micro-batch) folds in the same
    old-then-new order as one uninterrupted pass over all records.
    """
    from repro.core.batch import is_batch_kernel

    bucket = AccountedBucket(env.tracker, config.bucket_entry_overhead,
                             tag="pr_bucket")
    scanned = 0
    ops = 0
    batch_records = 0
    batch_pages = 0
    if seed is not None:
        records = seed.consume() if seed_consume else seed.records()
        for key, value in records:
            scanned += len(key) + len(value)
            existing = bucket.get(key)
            if existing is None:
                bucket.set(key, value)
            elif is_batch_kernel(pr_fn):
                raise ValueError(
                    "seed container has duplicate keys; batch-kernel "
                    "folds need a unique-key (already reduced) seed")
            else:
                bucket.set(key, pr_fn(key, existing, value))
            ops += 1
    if is_batch_kernel(pr_fn):
        for batch in kvc.consume_batches():
            scanned += batch.payload_bytes
            pr_fn(bucket, batch)
            ops += 1
            batch_records += len(batch)
            batch_pages += 1
    else:
        for key, value in kvc.consume():
            scanned += len(key) + len(value)
            existing = bucket.get(key)
            if existing is None:
                bucket.set(key, value)
            else:
                bucket.set(key, pr_fn(key, existing, value))
            ops += 1

    out = KVContainer(env.tracker, out_layout or kvc.layout,
                      config.page_size, tag=out_tag)
    for key, value in bucket.drain():
        out.add(key, value)
    env.charge_compute(scanned + out.nbytes)
    env.charge_ops(ops)
    if stats is not None:
        stats.update(ops=ops, batch_records=batch_records,
                     batch_pages=batch_pages)
    return out
