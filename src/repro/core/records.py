"""KV record encoding, including the paper's KV-hint layouts.

The general layout stores every key and value as a variable-length byte
sequence behind an 8-byte header (two little-endian u32 lengths).  The
KV-hint optimization (paper Section III-C3) lets the application declare
that the key and/or value length is constant for the whole job, or that
it is a NUL-terminated string (``CSTRING``, the paper's special value
-1): in both cases the corresponding 4-byte length header is omitted,
saving ~26 % of KV bytes for WordCount-like workloads.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from typing import Iterator

#: Length hint: the field is variable-length and carries a u32 header.
VARIABLE = None
#: Length hint: the field is a NUL-terminated byte string (no header,
#: one trailing NUL byte).  The paper reserves -1 for this.
CSTRING = -1

_U32 = struct.Struct("<I")
_U32x2 = struct.Struct("<II")
_U64 = struct.Struct("<Q")


def pack_u64(value: int) -> bytes:
    """Encode an integer value the way the benchmarks store counts."""
    return _U64.pack(value)


def unpack_u64(data: bytes | memoryview) -> int:
    return _U64.unpack(bytes(data[:8]))[0]


def _check_hint(hint: int | None, name: str) -> None:
    if hint is None or hint == CSTRING:
        return
    if not isinstance(hint, int) or isinstance(hint, bool) or hint <= 0:
        raise ValueError(
            f"{name} hint must be VARIABLE (None), CSTRING (-1), or a "
            f"positive length, got {hint!r}")


@dataclass(frozen=True)
class KVLayout:
    """Encoding rules for one KV stream.

    ``key_len`` / ``val_len``: ``VARIABLE`` (u32 header), ``CSTRING``
    (NUL-terminated, no header), or a positive fixed byte length (no
    header).
    """

    key_len: int | None = VARIABLE
    val_len: int | None = VARIABLE

    def __post_init__(self):
        _check_hint(self.key_len, "key_len")
        _check_hint(self.val_len, "val_len")

    # ------------------------------------------------------------- sizing

    @property
    def header_size(self) -> int:
        """Bytes of length headers per record under this layout."""
        return (4 if self.key_len is VARIABLE else 0) + \
               (4 if self.val_len is VARIABLE else 0)

    def field_size(self, hint: int | None, data: bytes) -> int:
        if hint is VARIABLE:
            return 4 + len(data)
        if hint == CSTRING:
            return len(data) + 1
        return hint

    def encoded_size(self, key: bytes, value: bytes) -> int:
        """Exact encoded byte count of one record."""
        return self.field_size(self.key_len, key) + \
            self.field_size(self.val_len, value)

    # ----------------------------------------------------------- encoding

    def _check_field(self, hint: int | None, data: bytes, name: str) -> None:
        if hint == CSTRING:
            if b"\0" in data:
                raise ValueError(
                    f"{name} contains a NUL byte but the layout declares "
                    f"it NUL-terminated")
        elif hint is not VARIABLE and len(data) != hint:
            raise ValueError(
                f"{name} is {len(data)} bytes but the layout fixes it at "
                f"{hint} bytes")

    def encode(self, key: bytes, value: bytes) -> bytes:
        """Encode one record."""
        self._check_field(self.key_len, key, "key")
        self._check_field(self.val_len, value, "value")
        klen_hdr = self.key_len is VARIABLE
        vlen_hdr = self.val_len is VARIABLE
        if klen_hdr and vlen_hdr:
            return _U32x2.pack(len(key), len(value)) + key + value
        parts = []
        if klen_hdr:
            parts.append(_U32.pack(len(key)))
        parts.append(key)
        if self.key_len == CSTRING:
            parts.append(b"\0")
        if vlen_hdr:
            parts.append(_U32.pack(len(value)))
        parts.append(value)
        if self.val_len == CSTRING:
            parts.append(b"\0")
        return b"".join(parts)

    def encode_into(self, buf: bytearray, offset: int, key: bytes,
                    value: bytes) -> int:
        """Encode one record directly at ``buf[offset:]``; returns the
        new offset.

        The zero-staging-copy path used by the shuffle: the map
        callback's record materialises straight inside the send-buffer
        partition, which is the design point the paper's Section III-B
        makes against MR-MPI's extra copies.  The caller guarantees
        capacity (``encoded_size`` bytes).
        """
        self._check_field(self.key_len, key, "key")
        self._check_field(self.val_len, value, "value")
        if self.key_len is VARIABLE and self.val_len is VARIABLE:
            _U32x2.pack_into(buf, offset, len(key), len(value))
            offset += 8
            buf[offset : offset + len(key)] = key
            offset += len(key)
            buf[offset : offset + len(value)] = value
            return offset + len(value)
        if self.key_len is VARIABLE:
            _U32.pack_into(buf, offset, len(key))
            offset += 4
        buf[offset : offset + len(key)] = key
        offset += len(key)
        if self.key_len == CSTRING:
            buf[offset] = 0
            offset += 1
        if self.val_len is VARIABLE:
            _U32.pack_into(buf, offset, len(value))
            offset += 4
        buf[offset : offset + len(value)] = value
        offset += len(value)
        if self.val_len == CSTRING:
            buf[offset] = 0
            offset += 1
        return offset

    # ----------------------------------------------------------- decoding

    def _decode_field(self, hint: int | None, buf: bytes,
                      offset: int) -> tuple[bytes, int]:
        if hint is VARIABLE:
            if offset + 4 > len(buf):
                raise ValueError(f"truncated length header at offset {offset}")
            (n,) = _U32.unpack_from(buf, offset)
            start = offset + 4
            if start + n > len(buf):
                raise ValueError(f"truncated field at offset {offset}")
            return bytes(buf[start : start + n]), start + n
        if hint == CSTRING:
            end = buf.find(b"\0", offset)
            if end < 0:
                raise ValueError(
                    f"unterminated NUL string at offset {offset}")
            return bytes(buf[offset:end]), end + 1
        if offset + hint > len(buf):
            raise ValueError(f"truncated fixed field at offset {offset}")
        return bytes(buf[offset : offset + hint]), offset + hint

    def decode(self, buf: bytes, offset: int = 0) -> tuple[bytes, bytes, int]:
        """Decode one record; returns ``(key, value, next_offset)``."""
        if self.key_len is VARIABLE and self.val_len is VARIABLE:
            # The paper's layout: one 8-byte header (both lengths)
            # before the actual data.
            if offset + 8 > len(buf):
                raise ValueError(f"truncated record header at offset {offset}")
            klen, vlen = _U32x2.unpack_from(buf, offset)
            start = offset + 8
            end = start + klen + vlen
            if end > len(buf):
                raise ValueError(f"truncated record at offset {offset}")
            return (bytes(buf[start : start + klen]),
                    bytes(buf[start + klen : end]), end)
        key, offset = self._decode_field(self.key_len, buf, offset)
        value, offset = self._decode_field(self.val_len, buf, offset)
        return key, value, offset

    def _scan_field(self, hint: int | None, buf, offset: int,
                    end: int) -> tuple[int, int, int]:
        """Like :meth:`_decode_field` but offsets-only (no bytes object).

        Returns ``(data_start, data_end, next_offset)``.
        """
        if hint is VARIABLE:
            if offset + 4 > end:
                raise ValueError(f"truncated length header at offset {offset}")
            (n,) = _U32.unpack_from(buf, offset)
            start = offset + 4
            if start + n > end:
                raise ValueError(f"truncated field at offset {offset}")
            return start, start + n, start + n
        if hint == CSTRING:
            stop = buf.find(b"\0", offset, end)
            if stop < 0:
                raise ValueError(f"unterminated NUL string at offset {offset}")
            return offset, stop, stop + 1
        if offset + hint > end:
            raise ValueError(f"truncated fixed field at offset {offset}")
        return offset, offset + hint, offset + hint

    def scan(self, buf, end: int | None = None):
        """Column-scan a packed run of records into offset arrays.

        Returns ``(roff, koff, kend, voff, vend)``: five ``array('Q')``
        columns where record ``i`` occupies ``buf[roff[i]:roff[i+1]]``,
        its key is ``buf[koff[i]:kend[i]]`` and its value
        ``buf[voff[i]:vend[i]]``.  ``roff`` has one extra trailing entry
        (the scan end), so it doubles as the record-boundary table the
        bulk-copy paths split on.  No per-record bytes objects are
        created.  ``buf`` must be ``bytes`` or ``bytearray`` (CSTRING
        scanning needs ``find``); pass ``end`` to scan a valid prefix.
        """
        if end is None:
            end = len(buf)
        kl, vl = self.key_len, self.val_len
        if isinstance(kl, int) and kl > 0 and isinstance(vl, int) and vl > 0:
            # Fixed/fixed: pure arithmetic, arrays built at C speed.
            rec = kl + vl
            if end % rec:
                raise ValueError(
                    f"buffer length {end} is not a multiple of the fixed "
                    f"record size {rec}")
            return (array("Q", range(0, end + 1, rec)),
                    array("Q", range(0, end, rec)),
                    array("Q", range(kl, end + 1, rec)),
                    array("Q", range(kl, end + 1, rec)),
                    array("Q", range(rec, end + 1, rec)))
        if isinstance(buf, memoryview):
            buf = bytes(buf)
        roff = array("Q")
        koff = array("Q")
        kend = array("Q")
        voff = array("Q")
        vend = array("Q")
        offset = 0
        if kl is VARIABLE and vl is VARIABLE:
            while offset < end:
                if offset + 8 > end:
                    raise ValueError(
                        f"truncated record header at offset {offset}")
                klen, vlen = _U32x2.unpack_from(buf, offset)
                ks = offset + 8
                vs = ks + klen
                ve = vs + vlen
                if ve > end:
                    raise ValueError(f"truncated record at offset {offset}")
                roff.append(offset)
                koff.append(ks)
                kend.append(vs)
                voff.append(vs)
                vend.append(ve)
                offset = ve
        else:
            while offset < end:
                roff.append(offset)
                ks, ke, offset = self._scan_field(kl, buf, offset, end)
                vs, ve, offset = self._scan_field(vl, buf, offset, end)
                koff.append(ks)
                kend.append(ke)
                voff.append(vs)
                vend.append(ve)
        roff.append(end)
        return roff, koff, kend, voff, vend

    def iter_records(self, buf: bytes | memoryview) -> Iterator[tuple[bytes, bytes]]:
        """Yield every record of a packed buffer."""
        if isinstance(buf, memoryview):
            buf = bytes(buf)
        offset = 0
        end = len(buf)
        while offset < end:
            key, value, offset = self.decode(buf, offset)
            yield key, value

    def count_records(self, buf: bytes | memoryview) -> int:
        return sum(1 for _ in self.iter_records(buf))


#: The default layout: both fields variable (8-byte header per record).
DEFAULT_LAYOUT = KVLayout()
