"""Per-phase profiling: virtual time and memory at phase boundaries.

Attach a :class:`PhaseProfile` to a framework driver to record, for
every MapReduce phase, its virtual duration and the rank's memory
level before/after - the data behind statements like "the aggregate
phase dominates the footprint" or the paper's per-phase discussions.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.cluster import RankEnv


@dataclass
class PhaseRecord:
    """One executed phase on one rank."""

    name: str
    started: float            # virtual seconds
    ended: float
    mem_before: int
    mem_after: int
    peak_so_far: int          # rank peak at phase end
    #: Exchange rounds the phase ran (map+aggregate phases only).
    rounds: int = 0
    #: Bytes the phase's output container spilled to the PFS.
    spilled_bytes: int = 0
    #: Records that moved through whole-batch kernel dispatches.
    batch_records: int = 0
    #: Whole-batch dispatches (one per page or chunk); 0 means the
    #: phase ran entirely on the per-record path.
    batch_pages: int = 0

    @property
    def duration(self) -> float:
        return self.ended - self.started

    @property
    def mem_delta(self) -> int:
        return self.mem_after - self.mem_before


@dataclass
class PhaseProfile:
    """Ordered phase records for one rank of one job."""

    env: RankEnv
    records: list[PhaseRecord] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        started = self.env.comm.clock.time
        mem_before = self.env.tracker.current
        try:
            yield
        finally:
            self.records.append(PhaseRecord(
                name=name,
                started=started,
                ended=self.env.comm.clock.time,
                mem_before=mem_before,
                mem_after=self.env.tracker.current,
                peak_so_far=self.env.tracker.peak,
            ))

    def annotate_last(self, *, rounds: int | None = None,
                      spilled_bytes: int | None = None,
                      batch_records: int | None = None,
                      batch_pages: int | None = None) -> None:
        """Amend the most recent record with post-phase driver stats.

        The ``phase`` context manager closes before the driver knows
        its exchange-round count or how much the output spilled; the
        driver back-fills those signals here so admission-control
        estimators (see :mod:`repro.sched`) see real numbers.
        """
        if not self.records:
            return
        record = self.records[-1]
        if rounds is not None:
            record.rounds = rounds
        if spilled_bytes is not None:
            record.spilled_bytes = spilled_bytes
        if batch_records is not None:
            record.batch_records = batch_records
        if batch_pages is not None:
            record.batch_pages = batch_pages

    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.records)

    def total_spilled(self) -> int:
        return sum(r.spilled_bytes for r in self.records)

    def total_time(self) -> float:
        return sum(r.duration for r in self.records)

    def by_name(self) -> dict[str, float]:
        """Aggregate duration per phase name (iterative jobs repeat)."""
        totals: dict[str, float] = {}
        for r in self.records:
            totals[r.name] = totals.get(r.name, 0.0) + r.duration
        return totals

    def dominant_phase(self) -> str | None:
        totals = self.by_name()
        if not totals:
            return None
        return max(totals, key=totals.get)

    def render(self) -> str:
        """Human-readable per-phase table."""
        lines = [f"{'phase':<16} {'time(s)':>10} {'mem delta':>12} "
                 f"{'peak':>12} {'rounds':>7} {'spilled':>10} "
                 f"{'batched':>9}"]
        for r in self.records:
            lines.append(f"{r.name:<16} {r.duration:>10.4f} "
                         f"{r.mem_delta:>+12d} {r.peak_so_far:>12d} "
                         f"{r.rounds:>7d} {r.spilled_bytes:>10d} "
                         f"{r.batch_records:>9d}")
        return "\n".join(lines)
