"""Mimir job configuration.

Mirrors the knobs the paper exposes: the data-buffer page size (64 MB
by default, to match MR-MPI's default), the statically allocated
communication buffer size (send and receive buffers are equal by
design), and the three optional optimizations - KV-hint (a
:class:`~repro.core.records.KVLayout` on the intermediate stream),
partial reduction, and KV compression (both enabled by supplying the
corresponding callback to the job driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigError
from repro.core.records import KVLayout
from repro.memory.limits import parse_size


@dataclass(frozen=True)
class MimirConfig:
    """Configuration for one :class:`~repro.core.job.Mimir` instance.

    ``page_size`` is the unit of data-buffer growth (KVCs and KMVCs
    allocate and free in whole pages); ``comm_buffer_size`` is the size
    of each of the two statically allocated communication buffers.  The
    intermediate-stream layout carries the KV-hint; output layouts may
    be overridden per call.
    """

    page_size: int = 64 * 1024
    comm_buffer_size: int = 64 * 1024
    layout: KVLayout = field(default_factory=KVLayout)
    #: Estimated bookkeeping bytes charged per hash-bucket entry, used
    #: by KV compression and partial reduction (the paper's "extra
    #: buffers to store the hash buckets").
    bucket_entry_overhead: int = 48
    #: Read granularity for file inputs.
    input_chunk_size: int = 64 * 1024
    #: KV-compression bucket budget in bytes.  ``None`` reproduces the
    #: paper's published behaviour (the aggregate is delayed until the
    #: whole map input is compressed, so the bucket is unbounded).  A
    #: byte budget enables the improvement the paper flags as future
    #: work: when the bucket reaches the budget it is drained through
    #: the shuffle and compression restarts, bounding its footprint.
    combiner_bucket_budget: int | str | None = None
    #: Out-of-core KV containers (the capability the authors added to
    #: Mimir after publication): when a shuffled KVC cannot grow within
    #: the rank's memory budget, its oldest pages spill to the PFS and
    #: the job degrades gracefully instead of failing with OOM.
    out_of_core: bool = False
    #: Shuffle/spill codec spec (``None``, ``"zlib"``, ``"dedup"``, or
    #: ``"dedup+zlib"``): the paper's KV-compression optimization.
    #: Filled container pages freeze into compressed segments, spill
    #: chunks are framed on the PFS, and exchange parts are framed on
    #: the wire - outputs stay byte-identical either way.
    codec: str | None = None
    #: Storage backend spec for this job's spill traffic (``None``,
    #: ``"pfs"``, ``"kv"``, or ``"extsort"``; see :mod:`repro.storage`).
    #: ``None`` keeps spill on the cluster's substrate; a spec redirects
    #: out-of-core container pages and intermediate conversions onto a
    #: companion backend sharing the substrate's chaos/metrics wiring.
    #: Inputs and outputs always stay on the cluster substrate so
    #: results remain fetchable by whoever staged the input.
    storage: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "page_size", parse_size(self.page_size))
        object.__setattr__(self, "comm_buffer_size",
                           parse_size(self.comm_buffer_size))
        object.__setattr__(self, "input_chunk_size",
                           parse_size(self.input_chunk_size))
        if self.page_size <= 0:
            raise ConfigError(f"page_size must be positive, got {self.page_size}")
        if self.comm_buffer_size <= 0:
            raise ConfigError(
                f"comm_buffer_size must be positive, got {self.comm_buffer_size}")
        if self.bucket_entry_overhead < 0:
            raise ConfigError("bucket_entry_overhead must be non-negative")
        if self.input_chunk_size <= 0:
            raise ConfigError("input_chunk_size must be positive")
        if not isinstance(self.layout, KVLayout):
            raise ConfigError(f"layout must be a KVLayout, got {self.layout!r}")
        if self.combiner_bucket_budget is not None:
            budget = parse_size(self.combiner_bucket_budget)
            if budget <= 0:
                raise ConfigError(
                    "combiner_bucket_budget must be positive or None, "
                    f"got {self.combiner_bucket_budget!r}")
            object.__setattr__(self, "combiner_bucket_budget", budget)
        if self.codec is not None:
            from repro.core.codec import CODEC_SPECS

            if self.codec not in CODEC_SPECS:
                raise ConfigError(
                    f"unknown codec {self.codec!r}; expected one of "
                    f"{CODEC_SPECS} or None")
        if self.storage is not None:
            from repro.storage import BACKENDS

            if self.storage not in BACKENDS:
                raise ConfigError(
                    f"unknown storage backend {self.storage!r}; expected "
                    f"one of {BACKENDS} or None")

    def with_layout(self, layout: KVLayout) -> "MimirConfig":
        """A copy of this config with a different intermediate layout."""
        return replace(self, layout=layout)

    def partition_size(self, nprocs: int) -> int:
        """Bytes of send buffer dedicated to each destination rank."""
        if nprocs <= 0:
            raise ConfigError(f"nprocs must be positive, got {nprocs}")
        size = self.comm_buffer_size // nprocs
        if size <= 0:
            raise ConfigError(
                f"comm_buffer_size {self.comm_buffer_size} is too small to "
                f"partition across {nprocs} ranks")
        return size
