"""KV compression: map-side combining (paper Section III-C2).

When the application supplies a combine callback, map output is routed
into a hash bucket instead of the send-buffer partitions.  Duplicate
keys are merged on the spot by the callback; the aggregate phase is
delayed until the map input is exhausted, at which point the bucket is
drained into the shuffler (reclaiming bucket memory entry-by-entry) and
the normal exchange rounds run.

The paper's caveats apply by construction: the bucket costs memory
(charged to the tracker), merging costs compute (charged to the
clock), and the win only materialises when the compression ratio is
high enough.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster import RankEnv
from repro.core.bucket import AccountedBucket
from repro.core.config import MimirConfig
from repro.core.shuffle import Shuffler

#: ``combine_fn(key, value_a, value_b) -> value`` merges two values of
#: one key into one (must be commutative and associative).
CombineFn = Callable[[bytes, bytes, bytes], bytes]


class Combiner:
    """Map-side combine stage in front of a :class:`Shuffler`."""

    def __init__(self, env: RankEnv, config: MimirConfig,
                 combine_fn: CombineFn, shuffler: Shuffler):
        self.env = env
        self.combine_fn = combine_fn
        self.shuffler = shuffler
        self.bucket = AccountedBucket(env.tracker,
                                      config.bucket_entry_overhead,
                                      tag="compress_bucket")
        #: None reproduces the paper (unbounded bucket, aggregate fully
        #: delayed); a byte budget enables the bounded-flush improvement
        #: the paper lists as future work.
        self.bucket_budget = config.combiner_bucket_budget
        self.records_in = 0
        self.records_merged = 0
        self.partial_flushes = 0
        self._ops = 0
        self.batch_records = 0
        self.batch_calls = 0

    @property
    def ops(self) -> int:
        """Framework dispatches including the downstream shuffle's."""
        return self._ops + self.shuffler.ops

    def emit(self, key: bytes, value: bytes) -> None:
        """Insert one KV, merging with any bucketed duplicate."""
        self.records_in += 1
        self._ops += 1
        self._merge(key, value)
        if self.bucket_budget is not None and \
                self.bucket.accounted_bytes > self.bucket_budget:
            self._partial_flush()

    def _merge(self, key: bytes, value: bytes) -> None:
        existing = self.bucket.get(key)
        if existing is None:
            self.bucket.set(key, value)
        else:
            merged = self.combine_fn(key, existing, value)
            self.bucket.set(key, merged)
            self.records_merged += 1

    # -------------------------------------------------------- batch emits

    def emit_run(self, keys, value: bytes) -> None:
        """Merge ``(key, value)`` for every key in one dispatch."""
        count = 0
        for key in keys:
            self._merge(key, value)
            count += 1
        self._note_batch(count)

    def emit_pairs(self, pairs) -> None:
        """Merge ``(key, value)`` pairs in one dispatch."""
        count = 0
        for key, value in pairs:
            self._merge(key, value)
            count += 1
        self._note_batch(count)

    def emit_batch(self, batch) -> None:
        """Merge every record of a :class:`~repro.core.batch.KVBatch`."""
        count = 0
        for key, value in batch.pairs_bytes():
            self._merge(key, value)
            count += 1
        self._note_batch(count)

    def _note_batch(self, count: int) -> None:
        self.records_in += count
        self._ops += 1
        self.batch_records += count
        self.batch_calls += 1
        if self.bucket_budget is not None and \
                self.bucket.accounted_bytes > self.bucket_budget:
            self._partial_flush()

    def _partial_flush(self) -> None:
        """Drain the bucket mid-map, bounding its memory footprint.

        Compression restarts empty afterwards, trading some compression
        ratio for a hard cap on the bucket's contribution to the peak.
        """
        self.env.charge_compute(self._drain_to_shuffler())
        self.partial_flushes += 1

    def _drain_to_shuffler(self) -> int:
        """Drain the bucket; returns the merged payload bytes moved.

        In batch mode the survivors flow out through one
        ``emit_pairs`` dispatch; the records, bytes, and exchange
        trigger points are identical to the per-record drain.
        """
        merged_bytes = 0
        if self.batch_calls:
            def _accounted():
                nonlocal merged_bytes
                for key, value in self.bucket.drain():
                    merged_bytes += len(key) + len(value)
                    yield key, value

            self.shuffler.emit_pairs(_accounted())
        else:
            for key, value in self.bucket.drain():
                self.shuffler.emit(key, value)
                merged_bytes += len(key) + len(value)
        return merged_bytes

    @property
    def compression_ratio(self) -> float:
        """Input records per unique record (>= 1)."""
        unique = len(self.bucket) + self.records_merged * 0  # current uniques
        if unique == 0:
            return 1.0
        return self.records_in / max(len(self.bucket), 1)

    def finish(self) -> None:
        """Drain the bucket into the shuffler and run the aggregate."""
        # Merging work is proportional to the records that went through
        # the bucket, not just the survivors.
        self.env.charge_compute(self._drain_to_shuffler())
        metrics = self.env.metrics
        metrics.inc("core.combine.records_in", self.records_in)
        metrics.inc("core.combine.merged", self.records_merged)
        if self.partial_flushes:
            metrics.inc("core.combine.flushes", self.partial_flushes)
        self.shuffler.finish()
