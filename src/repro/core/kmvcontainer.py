"""The KMV container (KMVC): grouped ``<key, [values...]>`` records.

Functionally identical to the KVC but for merged records.  Supports the
two-pass conversion algorithm of the paper: pass one *reserves* an
exactly sized slot per unique key (sizes gathered in a hash bucket),
pass two *fills* values into their slots as the source KVC is consumed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.core.records import CSTRING, VARIABLE, KVLayout
from repro.memory.pages import Page, PagePool
from repro.memory.tracker import MemoryTracker

_U32 = struct.Struct("<I")


def encode_kmv_record(layout: KVLayout, key: bytes,
                      values: list[bytes]) -> bytes:
    """Encode one complete KMV record (used by the MR-MPI baseline).

    Layout: key field (per ``layout.key_len``), u32 value count, then
    each value (per ``layout.val_len``).
    """
    parts = []
    if layout.key_len is VARIABLE:
        parts.append(_U32.pack(len(key)))
    parts.append(key)
    if layout.key_len == CSTRING:
        parts.append(b"\0")
    parts.append(_U32.pack(len(values)))
    for value in values:
        if layout.val_len is VARIABLE:
            parts.append(_U32.pack(len(value)))
        parts.append(value)
        if layout.val_len == CSTRING:
            parts.append(b"\0")
    return b"".join(parts)


def iter_kmv_buffer(layout: KVLayout,
                    buf: bytes) -> Iterator[tuple[bytes, list[bytes]]]:
    """Decode a packed run of KMV records."""
    offset = 0
    end = len(buf)
    while offset < end:
        key, offset = layout._decode_field(layout.key_len, buf, offset)
        (nvalues,) = _U32.unpack_from(buf, offset)
        offset += 4
        values = []
        for _ in range(nvalues):
            value, offset = layout._decode_field(layout.val_len, buf, offset)
            values.append(value)
        yield key, values


@dataclass
class _Slot:
    """Fill cursor for one reserved KMV record."""

    page: Page
    cursor: int
    remaining: int


class KMVContainer:
    """Key-multivalue records in pool pages, built by reserve/fill."""

    def __init__(self, tracker: MemoryTracker, layout: KVLayout | None = None,
                 page_size: int = 64 * 1024, tag: str = "kmvc"):
        self.layout = layout or KVLayout()
        self.pool = PagePool(tracker, page_size, tag=tag)
        self.pages: list[Page] = []
        #: Charged capacity per page: page_size for pool pages, a
        #: multiple of it for jumbo pages holding one oversized KMV.
        self._charges: dict[int, int] = {}
        self.nrecords = 0
        self.nbytes = 0
        self.tag = tag
        self._slots: list[_Slot] = []

    # ------------------------------------------------------------- sizing

    def _value_extra(self) -> int:
        """Per-value encoding overhead beyond the raw bytes."""
        if self.layout.val_len is VARIABLE:
            return 4
        if self.layout.val_len == CSTRING:
            return 1
        return 0

    def record_size(self, key: bytes, nvalues: int,
                    total_value_bytes: int) -> int:
        """Exact encoded size of a KMV record."""
        key_part = self.layout.field_size(self.layout.key_len, key)
        return key_part + 4 + total_value_bytes + nvalues * self._value_extra()

    # ------------------------------------------------------------ reserve

    def reserve(self, key: bytes, nvalues: int,
                total_value_bytes: int) -> int:
        """Reserve a slot for one unique key; returns the slot id.

        The key and the value count are written immediately; values are
        filled later with :meth:`append_value` in any interleaving.
        """
        if nvalues <= 0:
            raise ValueError(f"nvalues must be positive, got {nvalues}")
        size = self.record_size(key, nvalues, total_value_bytes)
        if size > self.pool.page_size:
            # A single KMV larger than one page (heavy skew: one very
            # frequent key).  Allocate a dedicated "jumbo" buffer in
            # whole page units - buffers are always fixed-size multiples
            # to stay fragmentation-safe.
            unit = self.pool.page_size
            charged = ((size + unit - 1) // unit) * unit
            self.pool.tracker.allocate(charged, self.tag)
            page = Page(charged, self.tag)
            self.pages.append(page)
            self._charges[id(page)] = charged
        elif not self.pages or self.pages[-1].remaining < size:
            self.pages.append(self.pool.acquire())
        page = self.pages[-1]
        cursor = page.used
        page.used += size  # pre-claim the whole record

        # Write the key part and the value count header.
        if self.layout.key_len is VARIABLE:
            page.data[cursor : cursor + 4] = _U32.pack(len(key))
            cursor += 4
        page.data[cursor : cursor + len(key)] = key
        cursor += len(key)
        if self.layout.key_len == CSTRING:
            page.data[cursor] = 0
            cursor += 1
        page.data[cursor : cursor + 4] = _U32.pack(nvalues)
        cursor += 4

        self._slots.append(_Slot(page, cursor, nvalues))
        self.nrecords += 1
        self.nbytes += size
        return len(self._slots) - 1

    def append_value(self, slot_id: int, value: bytes) -> None:
        """Fill the next value of a reserved record."""
        slot = self._slots[slot_id]
        if slot.remaining <= 0:
            raise ValueError(f"slot {slot_id} already holds all its values")
        page, cursor = slot.page, slot.cursor
        hint = self.layout.val_len
        if hint is VARIABLE:
            page.data[cursor : cursor + 4] = _U32.pack(len(value))
            cursor += 4
        elif hint == CSTRING:
            if b"\0" in value:
                raise ValueError("NUL byte in NUL-terminated value")
        elif len(value) != hint:
            raise ValueError(
                f"value is {len(value)} bytes, layout fixes {hint}")
        page.data[cursor : cursor + len(value)] = value
        cursor += len(value)
        if hint == CSTRING:
            page.data[cursor] = 0
            cursor += 1
        slot.cursor = cursor
        slot.remaining -= 1

    def finish_fill(self) -> None:
        """Assert every reserved slot was completely filled."""
        unfilled = sum(1 for s in self._slots if s.remaining)
        if unfilled:
            raise ValueError(f"{unfilled} KMV slot(s) not completely filled")
        self._slots.clear()

    # ------------------------------------------------------------ iterate

    def _iter_page(self, page: Page) -> Iterator[tuple[bytes, list[bytes]]]:
        yield from iter_kmv_buffer(self.layout, bytes(page.view))

    def records(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """Non-destructive iteration over ``(key, values)``."""
        for page in self.pages:
            yield from self._iter_page(page)

    def batches(self) -> Iterator[list[tuple[bytes, list[bytes]]]]:
        """Non-destructive iteration, one group-list per page."""
        for page in self.pages:
            yield list(self._iter_page(page))

    def consume(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """Destructive iteration freeing pages as they are read."""
        while self.pages:
            page = self.pages.pop(0)
            try:
                yield from self._iter_page(page)
            finally:
                self._release_page(page)
        self.nrecords = 0
        self.nbytes = 0

    def consume_batches(self) -> Iterator[list[tuple[bytes, list[bytes]]]]:
        """Destructive iteration, one group-list per page."""
        while self.pages:
            page = self.pages.pop(0)
            try:
                yield list(self._iter_page(page))
            finally:
                self._release_page(page)
        self.nrecords = 0
        self.nbytes = 0

    # ------------------------------------------------------------- manage

    def _release_page(self, page: Page) -> None:
        charged = self._charges.pop(id(page), None)
        if charged is None:
            self.pool.release(page)
        else:
            self.pool.tracker.free(charged, self.tag)

    def free(self) -> None:
        while self.pages:
            self._release_page(self.pages.pop())
        self.nrecords = 0
        self.nbytes = 0
        self._slots.clear()

    @property
    def memory_bytes(self) -> int:
        jumbo = sum(self._charges.values())
        normal = (len(self.pages) - len(self._charges)) * self.pool.page_size
        return normal + jumbo

    @property
    def npages(self) -> int:
        return len(self.pages)

    def __len__(self) -> int:
        return self.nrecords
